package kmeans

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"knor/internal/blas"
	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/simclock"
)

// Run executes ||Lloyd's (Algorithm 1) — knori.
//
// Each iteration has two layers:
//
//  1. a *real* parallel compute pass: worker goroutines process row-block
//     tasks, compute assignments with the configured pruning, and
//     accumulate membership deltas into per-thread accumulators, merged
//     by a parallel tree after one barrier. This keeps wall-clock
//     benchmarks honest and the results exact.
//
//  2. a *virtual* scheduling replay: the per-task costs recorded in (1)
//     are replayed through the configured scheduler policy against
//     simulated per-worker clocks and contended NUMA links. Replaying in
//     virtual time makes the reported SimSeconds deterministic — they do
//     not depend on how the Go runtime happened to interleave the real
//     goroutines — while still expressing skew, stealing, locality and
//     link contention exactly as the policy dictates.
func Run(data *matrix.Dense, cfg Config) (*Result, error) { return RunOf(data, cfg) }

// RunOf is Run generic over the element type: the float64 instantiation
// is the oracle engine, the float32 instantiation is the
// halved-bandwidth variant selected by Precision32 (see RunPrecision).
func RunOf[T blas.Float](data *matrix.Mat[T], cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if cfg.Spherical {
		data = data.Clone()
		normalizeRows(data)
	}
	eng := NewEngineValidated(data, cfg)
	return eng.run()
}

// taskCost captures what one task did during the compute pass, for the
// virtual replay.
type taskCost struct {
	dists   uint64
	bytes   int
	changed int
	rows    int
}

// EngineOf holds one run's state, generic over the element type; the
// distributed module embeds one (float64) engine per simulated machine.
type EngineOf[T blas.Float] struct {
	data *matrix.Mat[T]
	cfg  Config

	n, d, k int
	cents   *matrix.Mat[T]
	ps      *PruneStateOf[T]
	gsum    *AccumOf[T]   // persistent global sums
	deltas  []*AccumOf[T] // per-thread membership deltas
	group   *simclock.Group
	machine *numa.Machine
	place   *numa.Placement
	sc      sched.Scheduler
	tasks   []sched.Task
	costs   []taskCost

	// baseClock lets an enclosing simulation (knord) start this
	// machine's clocks at a given simulated time.
	baseClock float64
}

// Engine is the float64 engine, bit-identical with the pre-generic
// implementation.
type Engine = EngineOf[float64]

func NewEngineValidated[T blas.Float](data *matrix.Mat[T], cfg Config) *EngineOf[T] {
	n, d := data.Rows(), data.Cols()
	e := &EngineOf[T]{data: data, cfg: cfg, n: n, d: d, k: cfg.K}
	e.cents = initCentroids(data, cfg)
	if cfg.Spherical {
		normalizeRows(e.cents)
	}
	e.ps = NewPruneStateOf[T](cfg.Prune, n, cfg.K)
	e.gsum = NewAccumOf[T](cfg.K, d)
	e.deltas = make([]*AccumOf[T], cfg.Threads)
	for i := range e.deltas {
		e.deltas[i] = NewAccumOf[T](cfg.K, d)
	}
	e.group = simclock.NewGroup(cfg.Threads, cfg.Model)
	e.machine = numa.NewMachine(cfg.Topo, cfg.Model)
	e.place = numa.NewPlacement(cfg.Topo, cfg.Placement, n, cfg.TaskSize, cfg.Seed)
	e.sc = sched.New(cfg.Sched, cfg.Threads, e.workerNode)
	e.tasks = sched.MakeTasks(n, cfg.TaskSize, e.place.NodeOfRow)
	e.costs = make([]taskCost, len(e.tasks))
	return e
}

func (e *EngineOf[T]) workerNode(w int) int {
	return e.cfg.Topo.NodeOfThread(w, e.cfg.Threads)
}

func (e *EngineOf[T]) run() (*Result, error) {
	res := &Result{}
	e.group.ResetAll(e.baseClock)
	for iter := 0; iter < e.cfg.MaxIters; iter++ {
		st, changed, drift := e.Iterate(iter)
		res.PerIter = append(res.PerIter, st)
		res.Iters = iter + 1
		if iter > 0 && (changed == 0 || drift <= e.cfg.Tol) {
			res.Converged = true
			break
		}
	}
	e.finish(res)
	return res, nil
}

func (e *EngineOf[T]) finish(res *Result) {
	res.Centroids = matrix.ToFloat64(e.cents)
	res.Assign = e.ps.Assign
	res.Sizes = sizesOf(e.ps.Assign, e.k)
	res.SSE = SSEOf(e.data, e.cents, e.ps.Assign)
	res.SimSeconds = e.group.Max() - e.baseClock
	// In-memory runs hold the full n×d data plus algorithm state; both
	// scale with the element size.
	eb := blas.ElemBytes[T]()
	res.MemoryBytes = uint64(e.n)*uint64(e.d)*uint64(eb) +
		stateBytesElem(e.n, e.d, e.k, e.cfg.Threads, e.cfg.Prune, eb)
}

// Iterate performs one full iteration: the local super-phase followed
// by the (machine-local) global apply. It returns the iteration stats,
// the number of rows that changed membership, and total drift.
func (e *EngineOf[T]) Iterate(iter int) (IterStats, int, float64) {
	startT := e.group.Clock(0).Now()
	st, local := e.LocalPhase(iter)
	drift := e.ApplyGlobal(local)
	st.Drift = drift
	st.SimSeconds = e.group.Max() - startT
	return st, st.RowsChanged, drift
}

// LocalPhase runs the super-phase on this machine's shard: assignment
// with pruning, per-thread delta accumulation, the single barrier, the
// parallel delta merge, and the virtual scheduling replay. It returns
// the iteration stats and the machine's merged delta accumulator —
// which knord allreduces across machines before ApplyGlobal.
func (e *EngineOf[T]) LocalPhase(iter int) (IterStats, *AccumOf[T]) {
	model := e.cfg.Model
	e.ps.UpdateCentroidDists(e.cents)

	st := e.computePass(iter)
	st.Iter = iter
	merged := MergeTreeOf(e.deltas)

	// Virtual replay of the iteration through the scheduler.
	e.replay(iter)

	// Worker epilogue: centroid-distance refresh (O(k²d)) and the merge
	// tree (log T levels of 2kd flops each), after the single barrier.
	ccCost := float64(e.k*(e.k-1)/2) * model.DistanceCost(e.d)
	levels := 0
	if e.cfg.Threads > 1 {
		levels = int(math.Ceil(math.Log2(float64(e.cfg.Threads))))
	}
	mergeCost := float64(levels) * float64(2*e.k*e.d) * model.FlopTime
	e.group.Barrier()
	for w := 0; w < e.cfg.Threads; w++ {
		e.group.Clock(w).Advance(ccCost + mergeCost)
	}
	return st, merged
}

// ApplyGlobal folds a (possibly allreduced) delta accumulator into the
// persistent global sums, produces the next centroids, computes drift
// and loosens the pruning bounds. Returns total drift.
func (e *EngineOf[T]) ApplyGlobal(delta *AccumOf[T]) float64 {
	e.gsum.Merge(delta)
	next := e.gsum.Centroids(e.cents)
	if e.cfg.Spherical {
		normalizeRows(next)
	}
	drift := e.ps.ComputeDrift(e.cents, next)
	if e.cfg.Prune != PruneNone {
		e.parallelLoosen()
		perRow := 1.0
		switch e.cfg.Prune {
		case PruneTI:
			perRow = float64(e.k)
		case PruneYinyang:
			perRow = float64(yinyangGroups(e.k))
		}
		loosenCost := float64(e.n) * perRow * e.cfg.Model.FlopTime / float64(e.cfg.Threads)
		for w := 0; w < e.cfg.Threads; w++ {
			e.group.Clock(w).Advance(loosenCost)
		}
	}
	e.cents = next
	return drift
}

// computePass runs the real parallel assignment pass. Tasks are claimed
// off a shared atomic cursor (order is irrelevant for correctness: row
// decisions are independent given the iteration's centroids).
func (e *EngineOf[T]) computePass(iter int) IterStats {
	var cursor int64
	type out struct {
		ctr     PruneCounters
		changed int
	}
	outs := make([]out, e.cfg.Threads)
	rowBytes := e.d * blas.ElemBytes[T]()
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := &outs[w]
			delta := e.deltas[w]
			delta.Reset()
			for {
				ti := int(atomic.AddInt64(&cursor, 1)) - 1
				if ti >= len(e.tasks) {
					return
				}
				task := e.tasks[ti]
				before := o.ctr
				changedBefore := o.changed
				bytes := 0
				for i := task.Lo; i < task.Hi; i++ {
					if iter > 0 && !e.ps.NeedsRow(i) {
						o.ctr.C1++
						continue
					}
					bytes += rowBytes
					row := e.data.Row(i)
					old := e.ps.Assign[i]
					if e.ps.AssignRow(i, row, e.cents, &o.ctr) {
						o.changed++
						if old >= 0 {
							delta.Remove(row, int(old))
						}
						delta.Add(row, int(e.ps.Assign[i]))
					}
				}
				e.costs[ti] = taskCost{
					dists:   o.ctr.DistCalcs - before.DistCalcs,
					bytes:   bytes,
					changed: o.changed - changedBefore,
					rows:    task.Rows(),
				}
			}
		}(w)
	}
	wg.Wait()

	var st IterStats
	changed := 0
	for i := range outs {
		st.DistCalcs += outs[i].ctr.DistCalcs
		st.PrunedC1 += outs[i].ctr.C1
		st.PrunedC2 += outs[i].ctr.C2
		st.PrunedC3 += outs[i].ctr.C3
		changed += outs[i].changed
	}
	for i := range e.costs {
		st.BytesWanted += uint64(e.costs[i].bytes)
	}
	st.BytesRead = st.BytesWanted // in-memory: wanted == read
	st.RowsChanged = changed
	st.ActiveRows = e.n - int(st.PrunedC1)
	return st
}

// replay simulates the iteration's task execution under the configured
// scheduler policy in virtual time: the globally earliest worker pulls
// its next task, pays the memory transfer through the (possibly
// contended) NUMA links, then the compute cost. Deterministic given the
// config.
func (e *EngineOf[T]) replay(iter int) {
	model := e.cfg.Model
	e.sc.Reset(e.tasks)
	nw := e.cfg.Threads
	done := make([]bool, nw)
	remaining := nw
	var rng *rand.Rand
	if e.cfg.NUMAOblivious {
		rng = rand.New(rand.NewSource(e.cfg.Seed + int64(iter)))
	}
	// Beyond the physical core count, extra threads share cores via
	// SMT; simultaneous multithreading yields ~25% extra throughput per
	// core, so per-thread compute slows by T/(cores*1.25) — the paper's
	// "speedup degrades slightly at 64 cores" on a 48-core box.
	computeScale := 1.0
	if cores := e.cfg.Topo.TotalCores(); nw > cores {
		computeScale = float64(nw) / (float64(cores) * 1.25)
	}
	for remaining > 0 {
		// Earliest active worker (lowest id breaks ties).
		w := -1
		for i := 0; i < nw; i++ {
			if done[i] {
				continue
			}
			if w < 0 || e.group.Clock(i).Now() < e.group.Clock(w).Now() {
				w = i
			}
		}
		task, ok := e.sc.Next(w)
		if !ok {
			done[w] = true
			remaining--
			continue
		}
		at := e.workerNode(w)
		if rng != nil {
			// Unbound thread: the OS may run it on any node.
			at = rng.Intn(e.cfg.Topo.Nodes)
		}
		clock := e.group.Clock(w)
		cost := e.costs[task.ID]
		// The streamed row reads overlap the distance kernel (prefetch
		// hides transfer behind compute); the task ends at whichever
		// finishes last. Remote execution additionally slows the
		// compute itself: latency-bound accesses can't be prefetched.
		scale := computeScale
		if at != task.Node && model.RemoteComputePenalty > 1 {
			scale *= model.RemoteComputePenalty
		}
		ioEnd := e.machine.TouchAsync(clock.Now(), at, task.Node, cost.bytes)
		clock.Advance(scale * (float64(cost.dists)*model.DistanceCost(e.d) +
			float64(cost.rows)*model.RowOverhead +
			float64(cost.changed)*float64(2*e.d)*model.FlopTime))
		clock.AdvanceTo(ioEnd)
	}
}

// parallelLoosen applies post-update bound adjustments across threads.
func (e *EngineOf[T]) parallelLoosen() {
	var wg sync.WaitGroup
	stripe := (e.n + e.cfg.Threads - 1) / e.cfg.Threads
	for w := 0; w < e.cfg.Threads; w++ {
		lo := w * stripe
		if lo >= e.n {
			break
		}
		hi := lo + stripe
		if hi > e.n {
			hi = e.n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.ps.LoosenRows(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Centroids exposes the current centroids (used by knord between
// allreduce steps).
func (e *EngineOf[T]) Centroids() *matrix.Mat[T] { return e.cents }

// NewEngine validates cfg against data and builds an engine for
// drivers that run their own iteration loop (knord, benches).
func NewEngine[T blas.Float](data *matrix.Mat[T], cfg Config) (*EngineOf[T], error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if cfg.Spherical {
		data = data.Clone()
		normalizeRows(data)
	}
	return NewEngineValidated(data, cfg), nil
}

// Group exposes the engine's worker clocks so an enclosing simulation
// (the cluster network) can synchronise machine time around
// collectives.
func (e *EngineOf[T]) Group() *simclock.Group { return e.group }

// Assign exposes the current assignment vector (shard-local indices).
func (e *EngineOf[T]) Assign() []int32 { return e.ps.Assign }

// N returns the engine's shard size in rows.
func (e *EngineOf[T]) N() int { return e.n }
