package kmeans

import (
	"math"
	"testing"

	"knor/internal/matrix"
	"knor/internal/numa"
)

func TestKEqualsOne(t *testing.T) {
	data := testData(200, 4, 3, 201)
	for _, prune := range []Prune{PruneNone, PruneMTI, PruneTI, PruneYinyang} {
		cfg := baseCfg(1)
		cfg.Prune = prune
		res, err := RunSerial(data, cfg)
		if err != nil {
			t.Fatalf("prune=%v: %v", prune, err)
		}
		// k=1: the centroid is the global mean.
		mean := make([]float64, 4)
		for i := 0; i < data.Rows(); i++ {
			matrix.AddTo(mean, data.Row(i))
		}
		matrix.Scale(mean, 1/float64(data.Rows()))
		if matrix.Dist(res.Centroids.Row(0), mean) > 1e-9 {
			t.Fatalf("prune=%v: k=1 centroid not the mean", prune)
		}
		if !res.Converged || res.Iters > 2 {
			t.Fatalf("prune=%v: k=1 took %d iterations", prune, res.Iters)
		}
	}
}

func TestDEqualsOne(t *testing.T) {
	data := matrix.NewDense(100, 1)
	for i := 0; i < 100; i++ {
		if i < 50 {
			data.Set(i, 0, float64(i)*0.01)
		} else {
			data.Set(i, 0, 10+float64(i)*0.01)
		}
	}
	serial, err := RunSerial(data, baseCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := parCfg(2, 4)
	cfg.Prune = PruneMTI
	par, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(par.Centroids, 1e-9) {
		t.Fatal("1-D centroids differ")
	}
	// The two obvious groups must separate.
	if serial.Assign[0] == serial.Assign[99] {
		t.Fatal("1-D clusters not separated")
	}
}

func TestNEqualsK(t *testing.T) {
	data := testData(8, 4, 3, 202)
	res, err := RunSerial(data, baseCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	// Every point gets its own cluster (distinct rows).
	for _, s := range res.Sizes {
		if s != 1 {
			t.Fatalf("sizes %v", res.Sizes)
		}
	}
	if res.SSE > 1e-18 {
		t.Fatalf("n==k SSE = %g", res.SSE)
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	data := matrix.NewDense(50, 3)
	for i := 0; i < 50; i++ {
		copy(data.Row(i), []float64{1, 2, 3})
	}
	cfg := Config{K: 3, MaxIters: 10, Init: InitRandomPartition, Seed: 1}
	res, err := RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE != 0 {
		t.Fatalf("identical points SSE = %g", res.SSE)
	}
	if !res.Converged {
		t.Fatal("identical points did not converge")
	}
}

func TestToleranceStopsEarly(t *testing.T) {
	data := uniformData(2000, 6, 203)
	tight := baseCfg(8)
	tight.MaxIters = 100
	loose := tight
	loose.Tol = 1.0 // huge drift tolerance stops almost immediately
	rTight, _ := RunSerial(data, tight)
	rLoose, _ := RunSerial(data, loose)
	if rLoose.Iters >= rTight.Iters {
		t.Fatalf("loose tolerance (%d iters) not earlier than exact (%d)", rLoose.Iters, rTight.Iters)
	}
	if !rLoose.Converged {
		t.Fatal("loose tolerance not marked converged")
	}
}

func TestMaxItersHonoured(t *testing.T) {
	data := uniformData(1000, 4, 204)
	cfg := baseCfg(10)
	cfg.MaxIters = 3
	res, _ := RunSerial(data, cfg)
	if res.Iters > 3 {
		t.Fatalf("ran %d iterations", res.Iters)
	}
}

func TestNUMAObliviousDeterministicResult(t *testing.T) {
	// The oblivious random node choice affects only simulated time,
	// never the numerical result; two runs must agree exactly.
	data := testData(1000, 8, 5, 205)
	cfg := parCfg(5, 8)
	cfg.NUMAOblivious = true
	cfg.Placement = numa.PlaceSingleBank
	a, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-exactness across runs is not guaranteed (delta summation
	// order follows the racing task cursor), but agreement to fp-sum
	// tolerance is.
	if !a.Centroids.Equal(b.Centroids, 1e-9) {
		t.Fatal("oblivious runs disagree numerically")
	}
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("oblivious sim time not deterministic: %g vs %g", a.SimSeconds, b.SimSeconds)
	}
}

func TestSimTimeDeterministicAcrossRuns(t *testing.T) {
	data := testData(2000, 8, 5, 206)
	cfg := parCfg(5, 8)
	cfg.Prune = PruneMTI
	a, _ := Run(data, cfg)
	b, _ := Run(data, cfg)
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("sim time varies across identical runs: %g vs %g", a.SimSeconds, b.SimSeconds)
	}
	for i := range a.PerIter {
		if a.PerIter[i].SimSeconds != b.PerIter[i].SimSeconds {
			t.Fatalf("iter %d sim time differs", i)
		}
	}
}

func TestSphericalWithTIAndYinyang(t *testing.T) {
	data := testData(500, 8, 4, 207)
	ref := baseCfg(4)
	ref.Spherical = true
	exact, _ := RunSerial(data, ref)
	for _, prune := range []Prune{PruneTI, PruneYinyang} {
		cfg := ref
		cfg.Prune = prune
		got, err := RunSerial(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Centroids.Equal(got.Centroids, 1e-9) {
			t.Fatalf("spherical+%v centroids differ", prune)
		}
	}
}

func TestConvergedAssignmentsAreArgmin(t *testing.T) {
	// At convergence (no membership changes), every row must sit with
	// its nearest centroid under every pruning mode — the end-to-end
	// soundness of the bound pipeline. (Mid-run, assignments lag the
	// returned centroids by one update, as in any Lloyd's.)
	data := testData(800, 6, 5, 208)
	for _, prune := range []Prune{PruneNone, PruneMTI, PruneTI, PruneYinyang} {
		cfg := baseCfg(5)
		cfg.Prune = prune
		res, err := RunSerial(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("prune=%v did not converge", prune)
		}
		for i := 0; i < data.Rows(); i++ {
			trueD := matrix.Dist(data.Row(i), res.Centroids.Row(int(res.Assign[i])))
			bi, _ := nearest(data.Row(i), res.Centroids)
			biD := matrix.Dist(data.Row(i), res.Centroids.Row(bi))
			if trueD > biD+1e-9 {
				t.Fatalf("prune=%v row %d assigned to non-nearest centroid (d=%g vs %g)",
					prune, i, trueD, biD)
			}
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	data := testData(200, 4, 3, 209)
	cfg := baseCfg(3)
	cfg.Threads = 2
	eng, err := NewEngine(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.N() != 200 {
		t.Fatalf("N = %d", eng.N())
	}
	if eng.Group().Size() != 2 {
		t.Fatalf("group size %d", eng.Group().Size())
	}
	st, delta := eng.LocalPhase(0)
	if st.ActiveRows != 200 {
		t.Fatalf("first phase active %d", st.ActiveRows)
	}
	drift := eng.ApplyGlobal(delta)
	if math.IsNaN(drift) || drift < 0 {
		t.Fatalf("drift %g", drift)
	}
	if len(eng.Assign()) != 200 {
		t.Fatal("assign length")
	}
	if eng.Centroids().Rows() != 3 {
		t.Fatal("centroid shape")
	}
}

func TestRunGEMMValidation(t *testing.T) {
	data := testData(50, 4, 2, 210)
	if _, err := RunGEMM(data, Config{K: 0}, 16, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSizesMatchAssignments(t *testing.T) {
	data := testData(700, 6, 4, 211)
	for _, prune := range []Prune{PruneNone, PruneMTI, PruneYinyang} {
		cfg := parCfg(4, 4)
		cfg.Prune = prune
		res, err := Run(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, 4)
		for _, a := range res.Assign {
			counts[a]++
		}
		for c := range counts {
			if counts[c] != res.Sizes[c] {
				t.Fatalf("prune=%v cluster %d: size %d vs counted %d", prune, c, res.Sizes[c], counts[c])
			}
		}
	}
}
