package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"knor/internal/matrix"
)

func TestAccumAddRemove(t *testing.T) {
	a := NewAccum(2, 3)
	a.Add([]float64{1, 2, 3}, 0)
	a.Add([]float64{4, 5, 6}, 0)
	a.Add([]float64{7, 8, 9}, 1)
	if a.Count[0] != 2 || a.Count[1] != 1 {
		t.Fatalf("counts %v", a.Count)
	}
	if a.Sum[0] != 5 || a.Sum[2] != 9 || a.Sum[3] != 7 {
		t.Fatalf("sums %v", a.Sum)
	}
	a.Remove([]float64{1, 2, 3}, 0)
	if a.Count[0] != 1 || a.Sum[0] != 4 {
		t.Fatalf("after remove: count=%d sum=%v", a.Count[0], a.Sum)
	}
	a.Reset()
	for _, v := range a.Sum {
		if v != 0 {
			t.Fatal("Reset left sums")
		}
	}
}

func TestAccumMerge(t *testing.T) {
	a := NewAccum(2, 2)
	b := NewAccum(2, 2)
	a.Add([]float64{1, 1}, 0)
	b.Add([]float64{2, 2}, 0)
	b.Add([]float64{3, 3}, 1)
	a.Merge(b)
	if a.Count[0] != 2 || a.Count[1] != 1 || a.Sum[0] != 3 || a.Sum[2] != 3 {
		t.Fatalf("merge result %v %v", a.Sum, a.Count)
	}
}

func TestMergeTreeEqualsSerialMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, nAccs := range []int{1, 2, 3, 4, 7, 8, 16} {
		k, d := 3, 4
		accs := make([]*Accum, nAccs)
		ref := NewAccum(k, d)
		for i := range accs {
			accs[i] = NewAccum(k, d)
			for r := 0; r < 10; r++ {
				row := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
				c := rng.Intn(k)
				accs[i].Add(row, c)
				ref.Add(row, c)
			}
		}
		got := MergeTree(accs)
		for i := range ref.Sum {
			if math.Abs(got.Sum[i]-ref.Sum[i]) > 1e-9 {
				t.Fatalf("nAccs=%d: sum[%d]=%g want %g", nAccs, i, got.Sum[i], ref.Sum[i])
			}
		}
		for i := range ref.Count {
			if got.Count[i] != ref.Count[i] {
				t.Fatalf("nAccs=%d: count[%d]=%d want %d", nAccs, i, got.Count[i], ref.Count[i])
			}
		}
	}
}

func TestMergeTreeEmpty(t *testing.T) {
	if MergeTree(nil) != nil {
		t.Fatal("MergeTree(nil) != nil")
	}
}

func TestCentroidsEmptyClusterKeepsPrev(t *testing.T) {
	a := NewAccum(2, 2)
	a.Add([]float64{2, 4}, 0)
	a.Add([]float64{4, 6}, 0)
	prev, _ := matrix.FromRows([][]float64{{9, 9}, {7, 7}})
	c := a.Centroids(prev)
	if c.At(0, 0) != 3 || c.At(0, 1) != 5 {
		t.Fatalf("cluster 0 = %v", c.Row(0))
	}
	if c.At(1, 0) != 7 || c.At(1, 1) != 7 {
		t.Fatalf("empty cluster 1 = %v, want prev", c.Row(1))
	}
}

func TestSerializedBytes(t *testing.T) {
	a := NewAccum(10, 32)
	if got := a.SerializedBytes(); got != 10*32*8+10*8 {
		t.Fatalf("SerializedBytes = %d", got)
	}
}

// Property: MergeTree over any partition of the same add-stream matches
// a single accumulator, exactly for counts and within fp tolerance for
// sums.
func TestMergeTreeProperty(t *testing.T) {
	f := func(seed int64, parts uint8) bool {
		nParts := int(parts)%10 + 1
		rng := rand.New(rand.NewSource(seed))
		k, d := 4, 3
		accs := make([]*Accum, nParts)
		for i := range accs {
			accs[i] = NewAccum(k, d)
		}
		ref := NewAccum(k, d)
		for r := 0; r < 200; r++ {
			row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			c := rng.Intn(k)
			accs[rng.Intn(nParts)].Add(row, c)
			ref.Add(row, c)
		}
		got := MergeTree(accs)
		for i := range ref.Count {
			if got.Count[i] != ref.Count[i] {
				return false
			}
		}
		for i := range ref.Sum {
			if math.Abs(got.Sum[i]-ref.Sum[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Remove of the same stream returns to (near) zero.
func TestAccumCancellationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAccum(3, 2)
		rows := make([][]float64, 50)
		cs := make([]int, 50)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			cs[i] = rng.Intn(3)
			a.Add(rows[i], cs[i])
		}
		for i := range rows {
			a.Remove(rows[i], cs[i])
		}
		for _, c := range a.Count {
			if c != 0 {
				return false
			}
		}
		for _, s := range a.Sum {
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
