package kmeans

import (
	"math"
	"testing"

	"knor/internal/matrix"
	"knor/internal/workload"
)

// testData returns a small natural-clusters dataset.
func testData(n, d, clusters int, seed int64) *matrix.Dense {
	return workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: n, D: d,
		Clusters: clusters, Spread: 0.05, Seed: seed,
	})
}

func uniformData(n, d int, seed int64) *matrix.Dense {
	return workload.Generate(workload.Spec{Kind: workload.UniformMultivariate, N: n, D: d, Seed: seed})
}

func baseCfg(k int) Config {
	return Config{K: k, MaxIters: 50, Init: InitForgy, Seed: 1}
}

func TestConfigValidation(t *testing.T) {
	data := testData(100, 4, 3, 1)
	if _, err := RunSerial(data, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := RunSerial(data, Config{K: 101}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := RunSerial(data, Config{K: 3, Init: InitGiven}); err == nil {
		t.Fatal("InitGiven without centroids accepted")
	}
}

func TestStringers(t *testing.T) {
	if PruneNone.String() != "none" || PruneMTI.String() != "mti" || PruneTI.String() != "ti" {
		t.Fatal("Prune.String")
	}
	if InitForgy.String() != "forgy" || InitKMeansPP.String() != "kmeans++" ||
		InitRandomPartition.String() != "random-partition" || InitGiven.String() != "given" {
		t.Fatal("Init.String")
	}
}

func TestStateBytesOrdering(t *testing.T) {
	// Table 1: none < MTI < TI, and MTI adds only O(n + k²) over none.
	n, d, k, T := 100000, 32, 100, 8
	none := StateBytes(n, d, k, T, PruneNone)
	mti := StateBytes(n, d, k, T, PruneMTI)
	ti := StateBytes(n, d, k, T, PruneTI)
	if !(none < mti && mti < ti) {
		t.Fatalf("ordering violated: %d %d %d", none, mti, ti)
	}
	if mti-none != uint64(n)*8+uint64(k*k)*8 {
		t.Fatalf("MTI increment = %d", mti-none)
	}
	if ti-mti != uint64(n)*uint64(k)*8 {
		t.Fatalf("TI increment = %d", ti-mti)
	}
}

func TestSerialConvergesAndSSEDecreases(t *testing.T) {
	data := testData(1000, 8, 5, 2)
	res, err := RunSerial(data, baseCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge on clustered data")
	}
	// SSE non-increasing is implied by drift trend on Lloyd's; check
	// per-iteration drift goes to zero.
	last := res.PerIter[len(res.PerIter)-1]
	if last.RowsChanged != 0 {
		t.Fatalf("converged with %d rows changing", last.RowsChanged)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 1000 {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestSSEMonotoneNonIncreasing(t *testing.T) {
	// Run Lloyd's step by step via MaxIters and verify the objective
	// never increases (the classic Lloyd's invariant).
	data := uniformData(500, 6, 3)
	prev := math.Inf(1)
	for iters := 1; iters <= 10; iters++ {
		cfg := baseCfg(8)
		cfg.MaxIters = iters
		res, err := RunSerial(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.SSE > prev+1e-9 {
			t.Fatalf("SSE increased at iter %d: %g > %g", iters, res.SSE, prev)
		}
		prev = res.SSE
	}
}

func TestSerialMTIMatchesExact(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		data := testData(800, 8, 6, seed)
		cfgN := baseCfg(6)
		cfgN.Prune = PruneNone
		cfgM := baseCfg(6)
		cfgM.Prune = PruneMTI
		cfgT := baseCfg(6)
		cfgT.Prune = PruneTI
		rn, err := RunSerial(data, cfgN)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := RunSerial(data, cfgM)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RunSerial(data, cfgT)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rn.Assign {
			if rn.Assign[i] != rm.Assign[i] {
				t.Fatalf("seed %d: MTI changed assignment of row %d", seed, i)
			}
			if rn.Assign[i] != rt.Assign[i] {
				t.Fatalf("seed %d: TI changed assignment of row %d", seed, i)
			}
		}
		if !rn.Centroids.Equal(rm.Centroids, 1e-9) || !rn.Centroids.Equal(rt.Centroids, 1e-9) {
			t.Fatalf("seed %d: pruned centroids differ", seed)
		}
		if rm.Iters != rn.Iters || rt.Iters != rn.Iters {
			t.Fatalf("seed %d: iteration counts differ %d/%d/%d", seed, rn.Iters, rm.Iters, rt.Iters)
		}
	}
}

func TestMTIOnUniformDataStillExact(t *testing.T) {
	// Uniform data is the paper's worst case for pruning; correctness
	// must still hold.
	data := uniformData(600, 4, 7)
	cfgN := baseCfg(10)
	cfgM := baseCfg(10)
	cfgM.Prune = PruneMTI
	rn, _ := RunSerial(data, cfgN)
	rm, _ := RunSerial(data, cfgM)
	if rn.Iters != rm.Iters {
		t.Fatalf("iters differ: %d vs %d", rn.Iters, rm.Iters)
	}
	for i := range rn.Assign {
		if rn.Assign[i] != rm.Assign[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestMTIPrunesOnClusteredData(t *testing.T) {
	data := testData(2000, 8, 8, 4)
	cfg := baseCfg(8)
	cfg.Prune = PruneMTI
	res, err := RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters < 3 {
		t.Skip("converged too fast to observe pruning")
	}
	// In later iterations most rows should be clause-1 pruned.
	var pruned, possible uint64
	for _, st := range res.PerIter[2:] {
		pruned += st.PrunedC1
		possible += 2000
	}
	if pruned == 0 {
		t.Fatal("clause 1 never fired on clustered data")
	}
	// Exact distance computations with pruning must be well below the
	// unpruned n*k per iteration.
	cfgN := baseCfg(8)
	rn, _ := RunSerial(data, cfgN)
	var dp, dn uint64
	for _, st := range res.PerIter {
		dp += st.DistCalcs
	}
	for _, st := range rn.PerIter {
		dn += st.DistCalcs
	}
	if dp*2 > dn {
		t.Fatalf("MTI pruned too little: %d vs %d distance calcs", dp, dn)
	}
}

func TestTIPrunesAtLeastAsMuchAsMTI(t *testing.T) {
	data := testData(1500, 8, 6, 9)
	cfgM := baseCfg(6)
	cfgM.Prune = PruneMTI
	cfgT := baseCfg(6)
	cfgT.Prune = PruneTI
	rm, _ := RunSerial(data, cfgM)
	rt, _ := RunSerial(data, cfgT)
	var dm, dt uint64
	for _, st := range rm.PerIter {
		dm += st.DistCalcs
	}
	for _, st := range rt.PerIter {
		dt += st.DistCalcs
	}
	if dt > dm {
		t.Fatalf("full TI computed more distances (%d) than MTI (%d)", dt, dm)
	}
}

func TestSphericalSerial(t *testing.T) {
	data := testData(500, 8, 4, 11)
	cfg := baseCfg(4)
	cfg.Spherical = true
	res, err := RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Centroids must be unit vectors.
	for c := 0; c < 4; c++ {
		n := matrix.Norm(res.Centroids.Row(c))
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("centroid %d norm %g", c, n)
		}
	}
}

func TestSphericalMTIMatchesExact(t *testing.T) {
	data := testData(600, 8, 5, 12)
	cfgN := baseCfg(5)
	cfgN.Spherical = true
	cfgM := baseCfg(5)
	cfgM.Spherical = true
	cfgM.Prune = PruneMTI
	rn, _ := RunSerial(data, cfgN)
	rm, _ := RunSerial(data, cfgM)
	for i := range rn.Assign {
		if rn.Assign[i] != rm.Assign[i] {
			t.Fatalf("spherical MTI row %d differs", i)
		}
	}
}
