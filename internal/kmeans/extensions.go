package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"knor/internal/matrix"
)

// This file implements the remaining algorithm extensions the paper's
// future-work section names (§9): semi-supervised k-means++ (Yoder &
// Priebe) and agglomerative clustering (Rokach & Maimon). Spherical
// k-means and plain k-means++ live in the core config; GMM and kNN live
// in package numaml.

// RunSemiSupervised runs k-means seeded semi-supervisedly: rows with a
// known label (labels[i] >= 0) pin their class's seed to the labelled
// mean; the remaining clusters are seeded by k-means++ D² sampling that
// respects the pinned seeds. Labelled rows otherwise participate like
// any other row (soft supervision, as in semi-supervised k-means++).
func RunSemiSupervised(data *matrix.Dense, labels []int32, cfg Config) (*Result, error) {
	if len(labels) != data.Rows() {
		return nil, fmt.Errorf("kmeans: %d labels for %d rows", len(labels), data.Rows())
	}
	vcfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	k, d := vcfg.K, data.Cols()
	seeds := matrix.NewDense(k, d)
	counts := make([]int, k)
	for i, l := range labels {
		if l < 0 {
			continue
		}
		if int(l) >= k {
			return nil, fmt.Errorf("kmeans: label %d >= k=%d", l, k)
		}
		matrix.AddTo(seeds.Row(int(l)), data.Row(i))
		counts[l]++
	}
	// Pinned seeds: classes with labelled support.
	pinned := make([]bool, k)
	anyPinned := false
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			matrix.Scale(seeds.Row(c), 1/float64(counts[c]))
			pinned[c] = true
			anyPinned = true
		}
	}
	// Remaining seeds by D² sampling against the pinned ones.
	rng := rand.New(rand.NewSource(vcfg.Seed))
	d2 := make([]float64, data.Rows())
	for i := range d2 {
		d2[i] = math.Inf(1)
	}
	if anyPinned {
		for i := range d2 {
			for c := 0; c < k; c++ {
				if pinned[c] {
					if v := matrix.SqDist(data.Row(i), seeds.Row(c)); v < d2[i] {
						d2[i] = v
					}
				}
			}
		}
	}
	for c := 0; c < k; c++ {
		if pinned[c] {
			continue
		}
		var pick int
		if !anyPinned {
			pick = rng.Intn(data.Rows())
			anyPinned = true
			for i := range d2 {
				d2[i] = matrix.SqDist(data.Row(i), data.Row(pick))
			}
		} else {
			var total float64
			for _, v := range d2 {
				total += v
			}
			if total <= 0 {
				pick = rng.Intn(data.Rows())
			} else {
				target := rng.Float64() * total
				acc := 0.0
				pick = data.Rows() - 1
				for i, v := range d2 {
					acc += v
					if acc >= target {
						pick = i
						break
					}
				}
			}
		}
		copy(seeds.Row(c), data.Row(pick))
		for i := range d2 {
			if v := matrix.SqDist(data.Row(i), seeds.Row(c)); v < d2[i] {
				d2[i] = v
			}
		}
	}
	runCfg := cfg
	runCfg.Init = InitGiven
	runCfg.Centroids = seeds
	return Run(data, runCfg)
}

// Dendrogram is the merge history of an agglomerative run: each step
// merges clusters A and B (indices into the evolving cluster list,
// original clusters first) at the recorded dissimilarity.
type Dendrogram struct {
	Steps []MergeStep
}

// MergeStep is one agglomeration.
type MergeStep struct {
	A, B    int
	Dist    float64
	SizeNew int
}

// AgglomerateCentroids runs Ward-linkage agglomerative clustering over
// a k-means result's centroids, weighted by cluster size — the classic
// two-stage "k-means then merge" pipeline, giving the hierarchy the
// paper's future work asks for without touching all n rows again.
// It returns the dendrogram and a cut producing `cut` flat clusters
// (mapping original centroid index -> merged cluster id).
func AgglomerateCentroids(centroids *matrix.Dense, sizes []int, cut int) (*Dendrogram, []int, error) {
	k := centroids.Rows()
	if len(sizes) != k {
		return nil, nil, fmt.Errorf("kmeans: %d sizes for %d centroids", len(sizes), k)
	}
	if cut < 1 || cut > k {
		return nil, nil, fmt.Errorf("kmeans: cut %d out of range [1,%d]", cut, k)
	}
	type clus struct {
		mean   []float64
		weight float64
		alive  bool
		member int // flat id after cutting
	}
	clusters := make([]clus, k)
	for c := 0; c < k; c++ {
		mean := append([]float64(nil), centroids.Row(c)...)
		w := float64(sizes[c])
		if w <= 0 {
			w = 1e-12 // empty cluster: mergeable at zero cost
		}
		clusters[c] = clus{mean: mean, weight: w, alive: true}
	}
	// Ward distance between weighted clusters:
	// d(A,B) = (wA*wB)/(wA+wB) * ||meanA - meanB||².
	ward := func(a, b clus) float64 {
		return a.weight * b.weight / (a.weight + b.weight) * matrix.SqDist(a.mean, b.mean)
	}
	dend := &Dendrogram{}
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	alive := k
	for alive > cut {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if !clusters[i].alive {
				continue
			}
			for j := i + 1; j < k; j++ {
				if !clusters[j].alive {
					continue
				}
				if d := ward(clusters[i], clusters[j]); d < best {
					best = d
					bi, bj = i, j
				}
			}
		}
		// Merge bj into bi (weighted mean).
		a, b := &clusters[bi], &clusters[bj]
		total := a.weight + b.weight
		for j := range a.mean {
			a.mean[j] = (a.mean[j]*a.weight + b.mean[j]*b.weight) / total
		}
		a.weight = total
		b.alive = false
		parent[find(bj)] = find(bi)
		alive--
		dend.Steps = append(dend.Steps, MergeStep{A: bi, B: bj, Dist: math.Sqrt(best), SizeNew: int(math.Round(total))})
	}
	// Flat labels: compress roots to 0..cut-1.
	flat := make([]int, k)
	next := 0
	rootID := map[int]int{}
	for c := 0; c < k; c++ {
		r := find(c)
		id, ok := rootID[r]
		if !ok {
			id = next
			rootID[r] = id
			next++
		}
		flat[c] = id
	}
	return dend, flat, nil
}
