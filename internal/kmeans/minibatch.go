package kmeans

import (
	"math/rand"

	"knor/internal/matrix"
)

// RunMiniBatch implements mini-batch k-means (Sculley's web-scale
// variant, discussed in the paper's related work as the approximation
// family knor deliberately avoids). It is provided as an extension so
// the quality-vs-speed trade-off the paper alludes to can be measured:
// per batch, sampled rows are assigned to their nearest centroid and
// centroids take a gradient step with per-centroid learning rates.
func RunMiniBatch(data *matrix.Dense, cfg Config, batch int) (*Result, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		batch = 256
	}
	n, d, k := data.Rows(), data.Cols(), cfg.K
	if batch > n {
		batch = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cents := initCentroids(data, cfg)
	counts := make([]int64, k)
	res := &Result{}
	prev := cents.Clone()
	for iter := 0; iter < cfg.MaxIters; iter++ {
		copy(prev.Data, cents.Data)
		for b := 0; b < batch; b++ {
			i := rng.Intn(n)
			row := data.Row(i)
			bi, _ := nearest(row, cents)
			counts[bi]++
			eta := 1 / float64(counts[bi])
			cr := cents.Row(bi)
			for j := range cr {
				cr[j] += eta * (row[j] - cr[j])
			}
		}
		drift := 0.0
		for c := 0; c < k; c++ {
			drift += matrix.Dist(prev.Row(c), cents.Row(c))
		}
		res.PerIter = append(res.PerIter, IterStats{Iter: iter, ActiveRows: batch, Drift: drift})
		res.Iters = iter + 1
		if iter > 0 && drift <= cfg.Tol {
			res.Converged = true
			break
		}
	}
	// Final full assignment pass for reporting.
	assign := make([]int32, n)
	for i := range assign {
		bi, _ := nearest(data.Row(i), cents)
		assign[i] = int32(bi)
	}
	res.Centroids = cents
	res.Assign = assign
	res.Sizes = sizesOf(assign, k)
	res.SSE = SSEOf(data, cents, assign)
	res.MemoryBytes = StateBytes(n, d, k, 1, PruneNone)
	return res, nil
}
