package kmeans

import (
	"fmt"
	"math/rand"

	"knor/internal/matrix"
)

// MiniBatchState is the explicit, resumable state of a mini-batch
// k-means learner (Sculley's web-scale variant): the current centroids
// plus the per-centroid observation counts that set the per-centroid
// learning rates eta_c = 1/counts[c]. Folding a row is deterministic
// given the state, so two learners with equal state that see the same
// rows in the same order stay bit-identical — this is what makes the
// serving layer's StreamEngine checkpoint/resume exact.
type MiniBatchState struct {
	Centroids *matrix.Dense
	Counts    []int64
}

// NewMiniBatchState starts a learner from seed centroids (cloned).
func NewMiniBatchState(centroids *matrix.Dense) *MiniBatchState {
	return &MiniBatchState{
		Centroids: centroids.Clone(),
		Counts:    make([]int64, centroids.Rows()),
	}
}

// Clone deep-copies the state.
func (s *MiniBatchState) Clone() *MiniBatchState {
	return &MiniBatchState{
		Centroids: s.Centroids.Clone(),
		Counts:    append([]int64(nil), s.Counts...),
	}
}

// K returns the number of centroids.
func (s *MiniBatchState) K() int { return s.Centroids.Rows() }

// Dims returns the centroid dimensionality.
func (s *MiniBatchState) Dims() int { return s.Centroids.Cols() }

// Fold assigns row to its nearest centroid and moves that centroid one
// gradient step toward the row with learning rate 1/count. It returns
// the chosen centroid index.
func (s *MiniBatchState) Fold(row []float64) int {
	bi, _ := nearest(row, s.Centroids)
	s.Counts[bi]++
	eta := 1 / float64(s.Counts[bi])
	cr := s.Centroids.Row(bi)
	for j := range cr {
		cr[j] += eta * (row[j] - cr[j])
	}
	return bi
}

// FoldMatrix folds every row of batch in order and returns the total
// centroid drift (sum of per-centroid Euclidean movement) the batch
// caused.
func (s *MiniBatchState) FoldMatrix(batch *matrix.Dense) (float64, error) {
	if batch.Cols() != s.Dims() {
		return 0, fmt.Errorf("kmeans: fold dims %d, model dims %d", batch.Cols(), s.Dims())
	}
	prev := s.Centroids.Clone()
	for i := 0; i < batch.Rows(); i++ {
		s.Fold(batch.Row(i))
	}
	drift := 0.0
	for c := 0; c < s.K(); c++ {
		drift += matrix.Dist(prev.Row(c), s.Centroids.Row(c))
	}
	return drift, nil
}

// RunMiniBatch implements mini-batch k-means (Sculley's web-scale
// variant, discussed in the paper's related work as the approximation
// family knor deliberately avoids). It is provided as an extension so
// the quality-vs-speed trade-off the paper alludes to can be measured:
// per batch, sampled rows are assigned to their nearest centroid and
// centroids take a gradient step with per-centroid learning rates. The
// learner itself lives in MiniBatchState, which the serving layer's
// StreamEngine reuses for its update-forever mode.
func RunMiniBatch(data *matrix.Dense, cfg Config, batch int) (*Result, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		batch = 256
	}
	n, d, k := data.Rows(), data.Cols(), cfg.K
	if batch > n {
		batch = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &MiniBatchState{Centroids: initCentroids(data, cfg), Counts: make([]int64, k)}
	res := &Result{}
	prev := st.Centroids.Clone()
	for iter := 0; iter < cfg.MaxIters; iter++ {
		copy(prev.Data, st.Centroids.Data)
		for b := 0; b < batch; b++ {
			st.Fold(data.Row(rng.Intn(n)))
		}
		drift := 0.0
		for c := 0; c < k; c++ {
			drift += matrix.Dist(prev.Row(c), st.Centroids.Row(c))
		}
		res.PerIter = append(res.PerIter, IterStats{Iter: iter, ActiveRows: batch, Drift: drift})
		res.Iters = iter + 1
		if iter > 0 && drift <= cfg.Tol {
			res.Converged = true
			break
		}
	}
	cents := st.Centroids
	// Final full assignment pass for reporting.
	assign := make([]int32, n)
	for i := range assign {
		bi, _ := nearest(data.Row(i), cents)
		assign[i] = int32(bi)
	}
	res.Centroids = cents
	res.Assign = assign
	res.Sizes = sizesOf(assign, k)
	res.SSE = SSEOf(data, cents, assign)
	res.MemoryBytes = StateBytes(n, d, k, 1, PruneNone)
	return res, nil
}
