package kmeans

import (
	"sync"

	"knor/internal/matrix"
	"knor/internal/sched"
)

// RunSerial is the dead-simple reference Lloyd's implementation used as
// the correctness oracle for every optimised engine, and (with
// cfg.Prune set) the serial MTI/TI variant. It performs no simulated
// timing.
//
// Like every knor engine it maintains cluster sums *incrementally*:
// a row contributes a delta only when its membership changes. This is
// what lets clause-1-pruned rows skip both computation and — in the SEM
// module — the I/O for their row data.
func RunSerial(data *matrix.Dense, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if cfg.Spherical {
		data = data.Clone()
		normalizeRows(data)
	}
	n, d, k := data.Rows(), data.Cols(), cfg.K
	cents := initCentroids(data, cfg)
	if cfg.Spherical {
		normalizeRows(cents)
	}
	ps := NewPruneState(cfg.Prune, n, k)
	res := &Result{}
	gsum := NewAccum(k, d) // persistent global sums
	for iter := 0; iter < cfg.MaxIters; iter++ {
		var ctr PruneCounters
		ps.UpdateCentroidDists(cents)
		changed := 0
		for i := 0; i < n; i++ {
			if iter > 0 && !ps.NeedsRow(i) {
				ctr.C1++
				continue
			}
			old := ps.Assign[i]
			if ps.AssignRow(i, data.Row(i), cents, &ctr) {
				changed++
				if old >= 0 {
					gsum.Remove(data.Row(i), int(old))
				}
				gsum.Add(data.Row(i), int(ps.Assign[i]))
			}
		}
		next := gsum.Centroids(cents)
		if cfg.Spherical {
			normalizeRows(next)
		}
		drift := ps.UpdateAfterMove(cents, next)
		cents = next
		res.PerIter = append(res.PerIter, IterStats{
			Iter:      iter,
			DistCalcs: ctr.DistCalcs,
			PrunedC1:  ctr.C1, PrunedC2: ctr.C2, PrunedC3: ctr.C3,
			RowsChanged: changed,
			ActiveRows:  n - int(ctr.C1),
			Drift:       drift,
		})
		res.Iters = iter + 1
		if iter > 0 && (changed == 0 || drift <= cfg.Tol) {
			res.Converged = true
			break
		}
	}
	res.Centroids = cents
	res.Assign = ps.Assign
	res.Sizes = sizesOf(ps.Assign, k)
	res.SSE = SSEOf(data, cents, ps.Assign)
	res.MemoryBytes = StateBytes(n, d, k, 1, cfg.Prune)
	return res, nil
}

// RunNaiveParallel is the paper's strawman: parallel phase I, then a
// *shared* next-centroid structure guarded by per-centroid locks —
// exactly the interference ||Lloyd's eliminates. It exists to be
// measured against (the "naïve Lloyd's" of Section 4) and is
// wall-clock-honest: the contention is real.
func RunNaiveParallel(data *matrix.Dense, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if cfg.Spherical {
		data = data.Clone()
		normalizeRows(data)
	}
	n, d, k := data.Rows(), data.Cols(), cfg.K
	cents := initCentroids(data, cfg)
	if cfg.Spherical {
		normalizeRows(cents)
	}
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{}
	locks := make([]sync.Mutex, k)
	shared := NewAccum(k, d)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		shared.Reset() // naive: rebuilds sums every iteration
		var changed int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		tasks := sched.MakeTasks(n, cfg.TaskSize, nil)
		next := make(chan sched.Task, len(tasks))
		for _, t := range tasks {
			next <- t
		}
		close(next)
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := 0
				for t := range next {
					for i := t.Lo; i < t.Hi; i++ {
						bi, _ := nearest(data.Row(i), cents)
						if int32(bi) != assign[i] {
							local++
							assign[i] = int32(bi)
						}
						// Phase II under a per-centroid lock: the
						// interference the paper measures.
						locks[bi].Lock()
						shared.Add(data.Row(i), bi)
						locks[bi].Unlock()
					}
				}
				mu.Lock()
				changed += int64(local)
				mu.Unlock()
			}()
		}
		wg.Wait()
		nextCents := shared.Centroids(cents)
		if cfg.Spherical {
			normalizeRows(nextCents)
		}
		drift := 0.0
		for c := 0; c < k; c++ {
			drift += matrix.Dist(cents.Row(c), nextCents.Row(c))
		}
		cents = nextCents
		res.PerIter = append(res.PerIter, IterStats{Iter: iter, RowsChanged: int(changed), ActiveRows: n, Drift: drift})
		res.Iters = iter + 1
		if iter > 0 && (changed == 0 || drift <= cfg.Tol) {
			res.Converged = true
			break
		}
	}
	res.Centroids = cents
	res.Assign = assign
	res.Sizes = sizesOf(assign, k)
	res.SSE = SSEOf(data, cents, assign)
	res.MemoryBytes = StateBytes(n, d, k, 1, PruneNone)
	return res, nil
}

func sizesOf(assign []int32, k int) []int {
	sizes := make([]int, k)
	for _, a := range assign {
		if a >= 0 {
			sizes[a]++
		}
	}
	return sizes
}
