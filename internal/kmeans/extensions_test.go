package kmeans

import (
	"testing"

	"knor/internal/matrix"
)

func TestSemiSupervisedValidation(t *testing.T) {
	data := testData(100, 4, 3, 101)
	if _, err := RunSemiSupervised(data, make([]int32, 5), baseCfg(3)); err == nil {
		t.Fatal("wrong label length accepted")
	}
	bad := make([]int32, 100)
	bad[0] = 99
	if _, err := RunSemiSupervised(data, bad, baseCfg(3)); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestSemiSupervisedUnlabelledEqualsUnsupervisedStructure(t *testing.T) {
	// With no labels at all, semi-supervised seeding degenerates to
	// k-means++-style D² seeding and must still converge properly.
	data := testData(600, 6, 4, 102)
	labels := make([]int32, 600)
	for i := range labels {
		labels[i] = -1
	}
	res, err := RunSemiSupervised(data, labels, baseCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

func TestSemiSupervisedRespectsLabels(t *testing.T) {
	// Label a handful of rows from each true cluster; the labelled
	// rows must overwhelmingly land in their own pinned cluster.
	data := testData(2000, 8, 4, 103)
	serial, _ := RunSerial(data, baseCfg(4))
	labels := make([]int32, 2000)
	for i := range labels {
		labels[i] = -1
	}
	// Use the converged unsupervised clustering as ground truth and
	// label 10 rows per cluster with that id.
	counts := make([]int, 4)
	for i, a := range serial.Assign {
		if counts[a] < 10 {
			labels[i] = a
			counts[a]++
		}
	}
	res, err := RunSemiSupervised(data, labels, baseCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	total := 0
	for i, l := range labels {
		if l < 0 {
			continue
		}
		total++
		if res.Assign[i] == l {
			agree++
		}
	}
	if agree < total*9/10 {
		t.Fatalf("labelled rows kept their class only %d/%d times", agree, total)
	}
}

func TestSemiSupervisedImprovesSeedQuality(t *testing.T) {
	// Fully labelled data seeds at the class means: convergence should
	// be at least as fast as Forgy seeding.
	data := testData(1500, 8, 5, 104)
	serial, _ := RunSerial(data, baseCfg(5))
	res, err := RunSemiSupervised(data, serial.Assign, baseCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > serial.Iters {
		t.Fatalf("supervised seeding took %d iters vs %d unsupervised", res.Iters, serial.Iters)
	}
	if res.SSE > serial.SSE*1.01 {
		t.Fatalf("supervised SSE %g worse than %g", res.SSE, serial.SSE)
	}
}

func TestAgglomerateValidation(t *testing.T) {
	c := matrix.NewDense(3, 2)
	if _, _, err := AgglomerateCentroids(c, []int{1, 2}, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, _, err := AgglomerateCentroids(c, []int{1, 1, 1}, 0); err == nil {
		t.Fatal("cut=0 accepted")
	}
	if _, _, err := AgglomerateCentroids(c, []int{1, 1, 1}, 4); err == nil {
		t.Fatal("cut>k accepted")
	}
}

func TestAgglomerateMergesNearestFirst(t *testing.T) {
	// Four centroids: two tight pairs far apart. The first two merges
	// must combine the pairs, and a 2-cut separates them.
	c, _ := matrix.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10},
	})
	dend, flat, err := AgglomerateCentroids(c, []int{100, 100, 100, 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dend.Steps) != 2 {
		t.Fatalf("%d merge steps", len(dend.Steps))
	}
	if flat[0] != flat[1] || flat[2] != flat[3] || flat[0] == flat[2] {
		t.Fatalf("flat labels %v", flat)
	}
	// Merge distances are non-decreasing for Ward on this geometry.
	if dend.Steps[0].Dist > dend.Steps[1].Dist {
		t.Fatalf("merge order wrong: %v", dend.Steps)
	}
}

func TestAgglomerateFullHierarchy(t *testing.T) {
	data := testData(1000, 6, 6, 105)
	res, _ := RunSerial(data, baseCfg(6))
	dend, flat, err := AgglomerateCentroids(res.Centroids, res.Sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dend.Steps) != 5 {
		t.Fatalf("%d steps for k=6 cut=1", len(dend.Steps))
	}
	for _, f := range flat {
		if f != 0 {
			t.Fatalf("cut=1 produced labels %v", flat)
		}
	}
	// cut == k is the identity partition.
	_, flatK, _ := AgglomerateCentroids(res.Centroids, res.Sizes, 6)
	seen := map[int]bool{}
	for _, f := range flatK {
		if seen[f] {
			t.Fatalf("cut=k merged clusters: %v", flatK)
		}
		seen[f] = true
	}
}

func TestAgglomerateWeighting(t *testing.T) {
	// Ward weighting: merging with a tiny cluster is cheaper than with
	// a huge one at the same distance — the tiny pair merges first.
	c, _ := matrix.FromRows([][]float64{
		{0, 0}, {1, 0}, // big pair
		{10, 10}, {11, 10}, // tiny pair, same spacing
	})
	dend, _, err := AgglomerateCentroids(c, []int{10000, 10000, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := dend.Steps[0]
	if !(first.A == 2 && first.B == 3) {
		t.Fatalf("first merge was %+v, want the small pair", first)
	}
}
