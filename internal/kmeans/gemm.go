package kmeans

import (
	"knor/internal/blas"
	"knor/internal/matrix"
)

// The implementations in this file are the Table 3 baselines: the same
// Lloyd's algorithm expressed in the implementation styles of the
// libraries the paper measures serially. They are honest
// implementations, not slowdown knobs — the performance differences
// come from the styles themselves (GEMM materialises an n×k distance
// matrix; "copying" clones each row; "indirect" calls through a
// function value per distance like a generic library kernel).
type styleRunner[T blas.Float] func(data, cents *matrix.Mat[T], assign []int32, gsum *AccumOf[T]) int

// runStyled drives full Lloyd's iterations with the given assignment
// pass and incremental sums, sharing convergence logic.
func runStyled[T blas.Float](data *matrix.Mat[T], cfg Config, pass styleRunner[T]) (*Result, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	n, d, k := data.Rows(), data.Cols(), cfg.K
	cents := initCentroids(data, cfg)
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	gsum := NewAccumOf[T](k, d)
	res := &Result{}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		changed := pass(data, cents, assign, gsum)
		next := gsum.Centroids(cents)
		drift := 0.0
		for c := 0; c < k; c++ {
			drift += float64(matrix.Dist(cents.Row(c), next.Row(c)))
		}
		cents = next
		res.PerIter = append(res.PerIter, IterStats{Iter: iter, RowsChanged: changed, ActiveRows: n, Drift: drift})
		res.Iters = iter + 1
		if iter > 0 && (changed == 0 || drift <= cfg.Tol) {
			res.Converged = true
			break
		}
	}
	res.Centroids = matrix.ToFloat64(cents)
	res.Assign = assign
	res.Sizes = sizesOf(assign, k)
	res.SSE = SSEOf(data, cents, assign)
	res.MemoryBytes = StateBytes(n, d, k, 1, PruneNone)
	return res, nil
}

// RunGEMM is the MATLAB/BLAS-style baseline: per chunk, all squared
// distances are materialised with one GEMM (‖v‖²+‖c‖²−2·V·Cᵀ), then an
// argmin pass assigns rows. Chunking keeps the distance matrix L2-sized
// as the vendor libraries do.
func RunGEMM(data *matrix.Dense, cfg Config, chunk, threads int) (*Result, error) {
	return RunGEMMOf(data, cfg, chunk, threads)
}

// RunGEMMOf is RunGEMM generic over the element type. At float32 the
// blocked distance computation routes through the register-tiled
// float32 Dgemm microkernel — the serving assign path's kernel — so
// this is also the float32 training baseline knorbench's precision
// sweep measures.
func RunGEMMOf[T blas.Float](data *matrix.Mat[T], cfg Config, chunk, threads int) (*Result, error) {
	if chunk <= 0 {
		chunk = 4096
	}
	if threads <= 0 {
		threads = 1
	}
	return runStyled(data, cfg, func(data, cents *matrix.Mat[T], assign []int32, gsum *AccumOf[T]) int {
		n, d, k := data.Rows(), data.Cols(), cents.Rows()
		dist := make([]T, chunk*k)
		changed := 0
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			m := hi - lo
			blas.PairwiseSqDist(data.Data[lo*d:hi*d], m, cents.Data, k, d, dist, threads)
			for i := 0; i < m; i++ {
				row := dist[i*k : (i+1)*k]
				best, bi := inf[T](), 0
				for c, v := range row {
					if v < best {
						best, bi = v, c
					}
				}
				g := lo + i
				if int32(bi) != assign[g] {
					changed++
					if assign[g] >= 0 {
						gsum.Remove(data.Row(g), int(assign[g]))
					}
					gsum.Add(data.Row(g), bi)
					assign[g] = int32(bi)
				}
			}
		}
		return changed
	})
}

// RunIterativeCopying is the R-style baseline: an iterative kernel that
// copies each row into a scratch buffer before the distance loop (the
// data-frame extraction cost of vector-language implementations).
func RunIterativeCopying(data *matrix.Dense, cfg Config) (*Result, error) {
	return runStyled(data, cfg, func(data, cents *matrix.Dense, assign []int32, gsum *Accum) int {
		n, d := data.Rows(), data.Cols()
		scratch := make([]float64, d)
		changed := 0
		for i := 0; i < n; i++ {
			copy(scratch, data.Row(i))
			bi, _ := nearest(scratch, cents)
			if int32(bi) != assign[i] {
				changed++
				if assign[i] >= 0 {
					gsum.Remove(data.Row(i), int(assign[i]))
				}
				gsum.Add(data.Row(i), bi)
				assign[i] = int32(bi)
			}
		}
		return changed
	})
}

// indirectMetric is deliberately a mutable package-level variable so
// the compiler cannot devirtualise the call — preserving the dispatch
// cost the baseline models.
var indirectMetric func(a, b []float64) float64 = matrix.SqDist

// RunIterativeIndirect is the Scikit/MLpack-style baseline: the inner
// distance goes through a function value (the virtual-dispatch /
// generic-metric indirection of templated or wrapped library kernels).
func RunIterativeIndirect(data *matrix.Dense, cfg Config) (*Result, error) {
	metric := indirectMetric
	return runStyled(data, cfg, func(data, cents *matrix.Dense, assign []int32, gsum *Accum) int {
		n := data.Rows()
		changed := 0
		for i := 0; i < n; i++ {
			row := data.Row(i)
			best, bi := inf[float64](), 0
			for c := 0; c < cents.Rows(); c++ {
				if d := metric(row, cents.Row(c)); d < best {
					best, bi = d, c
				}
			}
			if int32(bi) != assign[i] {
				changed++
				if assign[i] >= 0 {
					gsum.Remove(row, int(assign[i]))
				}
				gsum.Add(row, bi)
				assign[i] = int32(bi)
			}
		}
		return changed
	})
}
