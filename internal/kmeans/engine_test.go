package kmeans

import (
	"testing"
	"testing/quick"

	"knor/internal/numa"
	"knor/internal/sched"
)

func parCfg(k, threads int) Config {
	cfg := baseCfg(k)
	cfg.Threads = threads
	cfg.TaskSize = 64
	cfg.Topo = numa.Topology{Nodes: 4, CoresPerNode: 4}
	cfg.Sched = sched.NUMAAware
	return cfg
}

func TestParallelMatchesSerial(t *testing.T) {
	data := testData(1200, 8, 6, 21)
	serial, err := RunSerial(data, baseCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		for _, prune := range []Prune{PruneNone, PruneMTI, PruneTI} {
			cfg := parCfg(6, threads)
			cfg.Prune = prune
			res, err := Run(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters != serial.Iters {
				t.Fatalf("T=%d prune=%v: iters %d vs serial %d", threads, prune, res.Iters, serial.Iters)
			}
			for i := range serial.Assign {
				if serial.Assign[i] != res.Assign[i] {
					t.Fatalf("T=%d prune=%v: row %d assignment differs", threads, prune, i)
				}
			}
			if !serial.Centroids.Equal(res.Centroids, 1e-9) {
				t.Fatalf("T=%d prune=%v: centroids differ", threads, prune)
			}
		}
	}
}

func TestParallelAllSchedulers(t *testing.T) {
	data := testData(1000, 8, 5, 22)
	serial, _ := RunSerial(data, baseCfg(5))
	for _, policy := range []sched.Policy{sched.Static, sched.FIFO, sched.NUMAAware} {
		cfg := parCfg(5, 4)
		cfg.Sched = policy
		cfg.Prune = PruneMTI
		res, err := Run(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !serial.Centroids.Equal(res.Centroids, 1e-9) {
			t.Fatalf("scheduler %v: centroids differ", policy)
		}
	}
}

func TestParallelAllPlacements(t *testing.T) {
	data := testData(800, 4, 4, 23)
	serial, _ := RunSerial(data, baseCfg(4))
	for _, place := range []numa.PlacementPolicy{numa.PlacePartitioned, numa.PlaceSingleBank, numa.PlaceInterleaved, numa.PlaceRandom} {
		cfg := parCfg(4, 4)
		cfg.Placement = place
		res, err := Run(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !serial.Centroids.Equal(res.Centroids, 1e-9) {
			t.Fatalf("placement %v changed the result", place)
		}
	}
}

func TestNUMAObliviousSlowerSimTime(t *testing.T) {
	// Figure 4's premise: with many threads, the NUMA-aware
	// configuration beats single-bank oblivious execution in simulated
	// time, and the result is identical.
	data := testData(4096, 16, 5, 24)
	aware := parCfg(5, 16)
	aware.MaxIters = 5
	aware.Tol = -1 // force all 5 iterations
	obl := aware
	obl.Placement = numa.PlaceSingleBank
	obl.NUMAOblivious = true
	ra, err := Run(data, aware)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(data, obl)
	if err != nil {
		t.Fatal(err)
	}
	if ro.SimSeconds <= ra.SimSeconds {
		t.Fatalf("oblivious (%g) not slower than aware (%g)", ro.SimSeconds, ra.SimSeconds)
	}
	if !ra.Centroids.Equal(ro.Centroids, 1e-9) {
		t.Fatal("NUMA policy changed numerical result")
	}
}

func TestSimTimeScalesWithThreads(t *testing.T) {
	data := testData(8192, 8, 5, 25)
	var prev float64
	for i, threads := range []int{1, 4, 16} {
		cfg := parCfg(5, threads)
		cfg.MaxIters = 3
		cfg.Tol = -1
		res, err := Run(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.SimSeconds >= prev {
			t.Fatalf("threads=%d sim time %g not faster than %g", threads, res.SimSeconds, prev)
		}
		prev = res.SimSeconds
	}
}

func TestIterStatsConsistency(t *testing.T) {
	data := testData(1000, 8, 5, 26)
	cfg := parCfg(5, 4)
	cfg.Prune = PruneMTI
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(1000)
	for _, st := range res.PerIter {
		if st.PrunedC1 > n {
			t.Fatalf("iter %d: C1=%d > n", st.Iter, st.PrunedC1)
		}
		if st.ActiveRows != int(n-st.PrunedC1) {
			t.Fatalf("iter %d: active=%d with C1=%d", st.Iter, st.ActiveRows, st.PrunedC1)
		}
		if st.BytesWanted != uint64(st.ActiveRows)*8*8 {
			t.Fatalf("iter %d: bytes=%d active=%d", st.Iter, st.BytesWanted, st.ActiveRows)
		}
		if st.SimSeconds <= 0 {
			t.Fatalf("iter %d: sim time %g", st.Iter, st.SimSeconds)
		}
	}
}

func TestMTIReducesSimTime(t *testing.T) {
	// Figure 8's premise: MTI beats no-pruning in time on clustered
	// data with identical results.
	data := testData(4096, 8, 8, 27)
	cfgN := parCfg(8, 8)
	cfgN.MaxIters = 30
	cfgM := cfgN
	cfgM.Prune = PruneMTI
	rn, _ := Run(data, cfgN)
	rm, _ := Run(data, cfgM)
	if rm.SimSeconds >= rn.SimSeconds {
		t.Fatalf("MTI (%g) not faster than none (%g)", rm.SimSeconds, rn.SimSeconds)
	}
	if !rn.Centroids.Equal(rm.Centroids, 1e-9) {
		t.Fatal("MTI changed result")
	}
}

func TestNaiveParallelMatchesSerial(t *testing.T) {
	data := testData(700, 4, 4, 28)
	serial, _ := RunSerial(data, baseCfg(4))
	cfg := baseCfg(4)
	cfg.Threads = 4
	cfg.TaskSize = 64
	res, err := RunNaiveParallel(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("naive parallel centroids differ")
	}
	for i := range serial.Assign {
		if serial.Assign[i] != res.Assign[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestParallelSpherical(t *testing.T) {
	data := testData(600, 8, 4, 29)
	cfgS := baseCfg(4)
	cfgS.Spherical = true
	serial, _ := RunSerial(data, cfgS)
	cfg := parCfg(4, 4)
	cfg.Spherical = true
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("parallel spherical centroids differ")
	}
}

// Property: for arbitrary small datasets, thread counts and pruning
// modes, the parallel engine reproduces the serial oracle.
func TestParallelEqualsSerialProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw, tRaw, pRaw uint8) bool {
		n := int(nRaw)%300 + 20
		k := int(kRaw)%5 + 2
		threads := int(tRaw)%6 + 1
		prune := Prune(int(pRaw) % 3)
		data := testData(n, 4, k, seed)
		cfg := baseCfg(k)
		cfg.Seed = seed
		cfg.MaxIters = 15
		serial, err := RunSerial(data, cfg)
		if err != nil {
			return false
		}
		pc := cfg
		pc.Threads = threads
		pc.TaskSize = 16
		pc.Topo = numa.Topology{Nodes: 2, CoresPerNode: 4}
		pc.Sched = sched.NUMAAware
		pc.Prune = prune
		res, err := Run(data, pc)
		if err != nil {
			return false
		}
		return serial.Centroids.Equal(res.Centroids, 1e-9) && serial.Iters == res.Iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
