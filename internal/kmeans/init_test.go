package kmeans

import (
	"math"
	"testing"

	"knor/internal/matrix"
	"knor/internal/workload"
)

func TestInitForgyDistinctRows(t *testing.T) {
	data := testData(100, 4, 3, 31)
	c := initForgy(data, 10, 7)
	if c.Rows() != 10 || c.Cols() != 4 {
		t.Fatalf("dims %dx%d", c.Rows(), c.Cols())
	}
	// Each centroid must be an actual data row.
	for i := 0; i < c.Rows(); i++ {
		found := false
		for r := 0; r < data.Rows(); r++ {
			if matrix.SqDist(c.Row(i), data.Row(r)) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("centroid %d is not a data row", i)
		}
	}
	// Distinct.
	for i := 0; i < c.Rows(); i++ {
		for j := i + 1; j < c.Rows(); j++ {
			if matrix.SqDist(c.Row(i), c.Row(j)) == 0 {
				t.Fatalf("centroids %d and %d identical", i, j)
			}
		}
	}
}

func TestInitDeterministic(t *testing.T) {
	data := testData(200, 4, 3, 32)
	for _, init := range []Init{InitForgy, InitRandomPartition, InitKMeansPP} {
		cfg := Config{K: 4, Init: init, Seed: 5}
		a := initCentroids(data, cfg)
		b := initCentroids(data, cfg)
		if !a.Equal(b, 0) {
			t.Fatalf("%v not deterministic", init)
		}
	}
}

func TestInitRandomPartitionNearGlobalMean(t *testing.T) {
	data := testData(2000, 4, 3, 33)
	c := initRandomPartition(data, 3, 9)
	// Random-partition means cluster centres all near the global mean.
	mean := make([]float64, 4)
	for i := 0; i < data.Rows(); i++ {
		matrix.AddTo(mean, data.Row(i))
	}
	matrix.Scale(mean, 1/float64(data.Rows()))
	for g := 0; g < 3; g++ {
		if matrix.Dist(c.Row(g), mean) > 0.2 {
			t.Fatalf("partition centroid %d far from mean: %g", g, matrix.Dist(c.Row(g), mean))
		}
	}
}

func TestKMeansPPSpreadsSeeds(t *testing.T) {
	// On well separated clusters, k-means++ should pick seeds in
	// distinct clusters far more often than Forgy picks from the
	// head-heavy power-law component. Check the seeds are pairwise
	// farther apart on average than Forgy's.
	spec := workload.Spec{Kind: workload.NaturalClusters, N: 3000, D: 8, Clusters: 8, Spread: 0.02, Seed: 44}
	data := workload.Generate(spec)
	avgPair := func(c *matrix.Dense) float64 {
		var s float64
		var cnt int
		for i := 0; i < c.Rows(); i++ {
			for j := i + 1; j < c.Rows(); j++ {
				s += matrix.Dist(c.Row(i), c.Row(j))
				cnt++
			}
		}
		return s / float64(cnt)
	}
	var ppSum, forgySum float64
	for seed := int64(0); seed < 5; seed++ {
		ppSum += avgPair(initKMeansPP(data, 8, seed))
		forgySum += avgPair(initForgy(data, 8, seed))
	}
	if ppSum <= forgySum {
		t.Fatalf("kmeans++ seeds (%g) not better spread than forgy (%g)", ppSum, forgySum)
	}
}

func TestKMeansPPImprovesSSE(t *testing.T) {
	data := testData(1500, 8, 10, 45)
	var ppSSE, forgySSE float64
	for seed := int64(0); seed < 3; seed++ {
		cfgPP := Config{K: 10, MaxIters: 30, Init: InitKMeansPP, Seed: seed}
		cfgF := Config{K: 10, MaxIters: 30, Init: InitForgy, Seed: seed}
		rp, err := RunSerial(data, cfgPP)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := RunSerial(data, cfgF)
		if err != nil {
			t.Fatal(err)
		}
		ppSSE += rp.SSE
		forgySSE += rf.SSE
	}
	if ppSSE > forgySSE*1.5 {
		t.Fatalf("kmeans++ SSE %g much worse than forgy %g", ppSSE, forgySSE)
	}
}

func TestInitGiven(t *testing.T) {
	data := testData(100, 4, 3, 46)
	given := matrix.NewDense(3, 4)
	for i := 0; i < 3; i++ {
		copy(given.Row(i), data.Row(i*10))
	}
	cfg := Config{K: 3, MaxIters: 20, Init: InitGiven, Centroids: given}
	res, err := RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations ran")
	}
	// The given matrix must not be mutated by the run.
	for i := 0; i < 3; i++ {
		if matrix.SqDist(given.Row(i), data.Row(i*10)) != 0 {
			t.Fatal("InitGiven mutated caller's centroids")
		}
	}
}

func TestNormalizeRows(t *testing.T) {
	m, _ := matrix.FromRows([][]float64{{3, 4}, {0, 0}, {5, 12}})
	normalizeRows(m)
	if math.Abs(matrix.Norm(m.Row(0))-1) > 1e-12 {
		t.Fatalf("row 0 norm %g", matrix.Norm(m.Row(0)))
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero row modified")
	}
	if math.Abs(m.At(2, 0)-5.0/13) > 1e-12 {
		t.Fatalf("row 2 = %v", m.Row(2))
	}
}
