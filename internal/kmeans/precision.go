package kmeans

import (
	"fmt"

	"knor/internal/matrix"
)

// Precision selects the element type of a run's numeric core at the
// API edges (the -precision flag of cmd/knori and cmd/knorserve, the
// facade's RunPrecision). The generic entry points (RunOf, RunGEMMOf,
// serve.NewBatcherOf) are the compile-time spelling of the same choice.
type Precision int

const (
	// Precision64 runs the float64 oracle engines (the default;
	// bit-identical with the pre-generic implementation).
	Precision64 Precision = iota
	// Precision32 converts the data once and runs the float32 engines:
	// half the memory traffic on every kernel, answers within the
	// relative-error bounds documented in EXPERIMENTS.md.
	Precision32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case Precision64:
		return "64"
	case Precision32:
		return "32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision parses a -precision flag value ("32" or "64").
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "64", "float64", "f64":
		return Precision64, nil
	case "32", "float32", "f32":
		return Precision32, nil
	default:
		return Precision64, fmt.Errorf("kmeans: unknown precision %q (want 32 or 64)", s)
	}
}

// RunPrecision executes knori at the requested precision. Precision64
// is exactly Run; Precision32 converts the data once (rounding each
// element to nearest float32) and runs the float32 engine. The Result
// is always reported in float64: centroids are widened exactly, SSE is
// accumulated in float64 either way.
func RunPrecision(data *matrix.Dense, cfg Config, p Precision) (*Result, error) {
	if p == Precision32 {
		return RunOf(matrix.Convert[float32](data), cfg)
	}
	return Run(data, cfg)
}

// RunGEMMPrecision is RunGEMM at the requested precision (the Table 3
// GEMM baseline and the shape of the serving assign path).
func RunGEMMPrecision(data *matrix.Dense, cfg Config, chunk, threads int, p Precision) (*Result, error) {
	if p == Precision32 {
		return RunGEMMOf(matrix.Convert[float32](data), cfg, chunk, threads)
	}
	return RunGEMM(data, cfg, chunk, threads)
}
