package kmeans

// Precision contract of the float32 engines against the float64 oracle.
//
// Tolerance derivation (referenced by EXPERIMENTS.md): one float32
// operation rounds with ε = 2⁻²⁴ ≈ 5.96e-8. A d-dimensional squared
// distance accumulates ≤ ~(d+2)·ε relative error; over an entire run
// the per-row errors are independent rounding noise, so the SSE — a sum
// of n such terms — concentrates around the float64 value with relative
// error O(d·ε) ≈ 64·6e-8 ≈ 4e-6 for d ≤ 64. What dominates instead is
// decision divergence: near-tie rows may assign to a different centroid
// and shift both runs onto different (equally valid) Lloyd's
// trajectories. On well-separated data those trajectories reconverge,
// so the tests assert SSE within 1e-3 *relative* of the oracle — loose
// enough for trajectory divergence on ties, tight enough that a wrong
// kernel (scale error, dropped term) fails immediately.

import (
	"math"
	"testing"

	"knor/internal/matrix"
	"knor/internal/workload"
)

const sseRelTol32 = 1e-3

func clusteredData(n, d, k int, seed int64) *matrix.Dense {
	return workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: n, D: d, Clusters: k, Spread: 0.05, Seed: seed,
	})
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestRun32WithinToleranceOfOracle runs the float32 engine across the
// pruning modes and checks it lands within the documented relative
// tolerance of the float64 oracle's objective.
func TestRun32WithinToleranceOfOracle(t *testing.T) {
	data := clusteredData(4000, 8, 10, 1)
	data32 := matrix.Convert[float32](data)
	for _, prune := range []Prune{PruneNone, PruneMTI, PruneTI, PruneYinyang} {
		cfg := Config{K: 10, MaxIters: 50, Seed: 7, Prune: prune, Threads: 2}
		want, err := Run(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunOf(data32, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rd := relDiff(got.SSE, want.SSE); rd > sseRelTol32 {
			t.Errorf("prune=%v: SSE32=%g SSE64=%g reldiff=%g > %g",
				prune, got.SSE, want.SSE, rd, sseRelTol32)
		}
		if !got.Converged {
			t.Errorf("prune=%v: float32 run did not converge (%d iters)", prune, got.Iters)
		}
		// The float32 engine's state footprint must reflect the halved
		// element size (data + float bound state are 4-byte).
		if got.MemoryBytes >= want.MemoryBytes {
			t.Errorf("prune=%v: float32 MemoryBytes %d >= float64 %d",
				prune, got.MemoryBytes, want.MemoryBytes)
		}
	}
}

// TestRunPrecision64IsOracleExact pins the facade: Precision64 must be
// the oracle run, bit for bit.
func TestRunPrecision64IsOracleExact(t *testing.T) {
	data := clusteredData(2000, 6, 8, 2)
	cfg := Config{K: 8, MaxIters: 40, Seed: 3, Prune: PruneMTI, Threads: 2}
	want, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPrecision(data, cfg, Precision64)
	if err != nil {
		t.Fatal(err)
	}
	if got.SSE != want.SSE || got.Iters != want.Iters {
		t.Fatalf("Precision64 diverged: SSE %g vs %g, iters %d vs %d",
			got.SSE, want.SSE, got.Iters, want.Iters)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("Precision64 assign[%d] = %d, want %d", i, got.Assign[i], want.Assign[i])
		}
	}
	if !got.Centroids.Equal(want.Centroids, 0) {
		t.Fatal("Precision64 centroids not bit-identical")
	}
}

func TestRunPrecision32(t *testing.T) {
	data := clusteredData(2000, 6, 8, 2)
	cfg := Config{K: 8, MaxIters: 40, Seed: 3, Prune: PruneMTI, Threads: 2}
	want, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPrecision(data, cfg, Precision32)
	if err != nil {
		t.Fatal(err)
	}
	if rd := relDiff(got.SSE, want.SSE); rd > sseRelTol32 {
		t.Fatalf("Precision32 SSE=%g oracle=%g reldiff=%g", got.SSE, want.SSE, rd)
	}
	// Result is reported in float64 regardless of engine precision.
	if got.Centroids.Rows() != 8 || got.Centroids.Cols() != 6 {
		t.Fatalf("centroid dims %dx%d", got.Centroids.Rows(), got.Centroids.Cols())
	}
}

// TestRunGEMM32WithinTolerance covers the GEMM-formulated baseline at
// float32 — the kernel shape the serve assign path uses — including the
// register-tiled Dgemm microkernel under chunking and threading.
func TestRunGEMM32WithinTolerance(t *testing.T) {
	data := clusteredData(3000, 16, 10, 4)
	cfg := Config{K: 10, MaxIters: 50, Seed: 5}
	want, err := RunGEMM(data, cfg, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunGEMMPrecision(data, cfg, 512, 2, Precision32)
	if err != nil {
		t.Fatal(err)
	}
	if rd := relDiff(got.SSE, want.SSE); rd > sseRelTol32 {
		t.Fatalf("GEMM32 SSE=%g oracle=%g reldiff=%g", got.SSE, want.SSE, rd)
	}
}

// TestRun32SphericalAndInits exercises the float32 engine through the
// remaining init methods and the spherical variant.
func TestRun32SphericalAndInits(t *testing.T) {
	data := clusteredData(1500, 8, 6, 6)
	data32 := matrix.Convert[float32](data)
	for _, init := range []Init{InitForgy, InitRandomPartition, InitKMeansPP} {
		cfg := Config{K: 6, MaxIters: 40, Seed: 9, Init: init, Prune: PruneMTI, Spherical: init == InitKMeansPP}
		want, err := Run(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunOf(data32, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rd := relDiff(got.SSE, want.SSE); rd > sseRelTol32 {
			t.Errorf("init=%v: SSE32=%g SSE64=%g reldiff=%g", init, got.SSE, want.SSE, rd)
		}
	}
}

// TestInitGivenConverts32 checks InitGiven centroids (always float64 in
// Config) reach a float32 engine converted, not rejected.
func TestInitGivenConverts32(t *testing.T) {
	data := clusteredData(500, 4, 4, 8)
	seeds := InitCentroidsFor(data, Config{K: 4, Init: InitKMeansPP, Seed: 1, MaxIters: 1})
	cfg := Config{K: 4, MaxIters: 30, Init: InitGiven, Centroids: seeds}
	got, err := RunOf(matrix.Convert[float32](data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rd := relDiff(got.SSE, want.SSE); rd > sseRelTol32 {
		t.Fatalf("InitGiven32 SSE=%g oracle=%g reldiff=%g", got.SSE, want.SSE, rd)
	}
}

func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]Precision{"32": Precision32, "64": Precision64, "f32": Precision32, "float64": Precision64} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePrecision("16"); err == nil {
		t.Error("ParsePrecision(16) accepted")
	}
	if Precision32.String() != "32" || Precision64.String() != "64" {
		t.Error("Precision.String() wrong")
	}
}
