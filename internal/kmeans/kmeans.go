// Package kmeans implements the paper's core contribution: ||Lloyd's —
// a re-parallelised Lloyd's algorithm that merges the assignment and
// update phases using per-thread centroid accumulators and a single
// barrier per iteration (Algorithm 1) — together with the minimal
// triangle inequality (MTI) pruning scheme, full Elkan TI for
// comparison, NUMA-aware execution, and the serial/GEMM baselines of
// Table 3.
package kmeans

import (
	"fmt"

	"knor/internal/blas"
	"knor/internal/matrix"
	"knor/internal/numa"
	"knor/internal/sched"
	"knor/internal/simclock"
)

// Prune selects the computation-pruning scheme.
type Prune int

const (
	// PruneNone computes every point-to-centroid distance (knori-).
	PruneNone Prune = iota
	// PruneMTI is the paper's minimal triangle inequality: O(n) upper
	// bounds plus an O(k²) centroid-to-centroid matrix, three clauses.
	PruneMTI
	// PruneTI is full Elkan: MTI plus the O(nk) lower-bound matrix.
	PruneTI
	// PruneYinyang is Yinyang k-means' group filtering: O(nt) lower
	// bounds with t ≈ k/10 groups (the related-work competitor).
	PruneYinyang
)

// String implements fmt.Stringer.
func (p Prune) String() string {
	switch p {
	case PruneNone:
		return "none"
	case PruneMTI:
		return "mti"
	case PruneTI:
		return "ti"
	case PruneYinyang:
		return "yinyang"
	default:
		return fmt.Sprintf("Prune(%d)", int(p))
	}
}

// Init selects the centroid initialisation method.
type Init int

const (
	// InitForgy picks k distinct random rows as centroids.
	InitForgy Init = iota
	// InitRandomPartition assigns rows to random clusters and averages.
	InitRandomPartition
	// InitKMeansPP is k-means++ (D² sampling).
	InitKMeansPP
	// InitGiven uses Config.Centroids as provided.
	InitGiven
)

// String implements fmt.Stringer.
func (i Init) String() string {
	switch i {
	case InitForgy:
		return "forgy"
	case InitRandomPartition:
		return "random-partition"
	case InitKMeansPP:
		return "kmeans++"
	case InitGiven:
		return "given"
	default:
		return fmt.Sprintf("Init(%d)", int(i))
	}
}

// Config controls a k-means run.
type Config struct {
	K        int
	MaxIters int
	// Tol stops when total centroid movement (sum of per-centroid
	// Euclidean drift) falls at or below it. Zero means exact
	// convergence (no row changes membership).
	Tol float64

	Init      Init
	Centroids *matrix.Dense // for InitGiven
	Seed      int64

	Prune Prune
	// Spherical normalises input rows and renormalises centroids after
	// each update, yielding spherical k-means (cosine similarity).
	Spherical bool

	Threads  int
	TaskSize int
	Sched    sched.Policy

	// Topo/Placement/Model configure the simulated NUMA machine. A zero
	// Topo means "single node with Threads cores" (no NUMA effects).
	Topo      numa.Topology
	Placement numa.PlacementPolicy
	Model     simclock.CostModel
	// OblividousThreads, when true, ignores thread-to-node binding:
	// every task is treated as running on a random node (the paper's
	// NUMA-oblivious baseline relies on the OS scheduler).
	NUMAOblivious bool
}

// WithDefaults returns a validated copy of the config with defaults
// filled in for a dataset of n rows. Exposed for the SEM and
// distributed engines, which embed this config.
func (c Config) WithDefaults(n int) (Config, error) { return c.withDefaults(n) }

// withDefaults returns a validated copy with defaults filled in.
func (c Config) withDefaults(n int) (Config, error) {
	if c.K <= 0 {
		return c, fmt.Errorf("kmeans: K must be positive, got %d", c.K)
	}
	if n < c.K {
		return c, fmt.Errorf("kmeans: n=%d < k=%d", n, c.K)
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 100
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.TaskSize <= 0 {
		c.TaskSize = sched.DefaultTaskSize
	}
	if c.Topo.Nodes == 0 {
		c.Topo = numa.Topology{Nodes: 1, CoresPerNode: c.Threads}
	}
	if err := c.Topo.Validate(); err != nil {
		return c, err
	}
	if c.Model == (simclock.CostModel{}) {
		c.Model = simclock.DefaultCostModel()
	}
	if c.Init == InitGiven {
		if c.Centroids == nil || c.Centroids.Rows() != c.K {
			return c, fmt.Errorf("kmeans: InitGiven requires %d centroids", c.K)
		}
	}
	return c, nil
}

// IterStats records one iteration's behaviour. Byte counters are
// meaningful for SEM runs; in-memory runs fill the compute fields.
type IterStats struct {
	Iter         int
	SimSeconds   float64 // simulated wall time of the iteration
	DistCalcs    uint64  // exact distance computations performed
	PrunedC1     uint64  // rows skipped entirely (clause 1)
	PrunedC2     uint64  // candidate distances skipped (clause 2)
	PrunedC3     uint64  // candidate distances skipped post-tighten (clause 3)
	RowsChanged  int     // rows that switched membership
	ActiveRows   int     // rows whose data had to be touched
	BytesWanted  uint64  // row bytes the algorithm asked for
	BytesRead    uint64  // bytes actually moved (SEM: from SSD)
	RowCacheHits uint64  // SEM row-cache hits
	Drift        float64 // total centroid movement
}

// Result of a k-means run.
type Result struct {
	Centroids  *matrix.Dense
	Assign     []int32
	Sizes      []int // cluster cardinalities
	Iters      int
	Converged  bool
	SSE        float64
	SimSeconds float64 // total simulated time
	PerIter    []IterStats
	// MemoryBytes estimates the algorithm-state footprint (excludes the
	// nd data matrix): per-thread centroids, bounds, assignment. Used
	// by the Table 1 / Figure 8c reproduction.
	MemoryBytes uint64
}

// SSEOf computes the k-means objective for an assignment. The per-row
// squared distances are computed at the data's element type; the sum is
// accumulated in float64 at every width.
func SSEOf[T blas.Float](data, centroids *matrix.Mat[T], assign []int32) float64 {
	var sse float64
	for i := 0; i < data.Rows(); i++ {
		sse += float64(matrix.SqDist(data.Row(i), centroids.Row(int(assign[i]))))
	}
	return sse
}

// StateBytes returns the asymptotic-memory-model byte count for the
// float64 routine described (Table 1): per-thread centroid copies Tkd,
// bounds state for MTI/TI, and the assignment vector.
func StateBytes(n, d, k, threads int, prune Prune) uint64 {
	return stateBytesElem(n, d, k, threads, prune, 8)
}

// stateBytesElem is StateBytes for an arbitrary element size (the
// float32 engines carry half the float state per entry).
func stateBytesElem(n, d, k, threads int, prune Prune, eb int) uint64 {
	e := uint64(eb)
	b := uint64(threads) * uint64(k) * uint64(d) * e // per-thread centroids
	b += uint64(k) * uint64(d) * e * 2               // current + next centroids
	b += uint64(n) * 4                               // assignment (int32)
	switch prune {
	case PruneMTI:
		b += uint64(n) * e             // upper bounds
		b += uint64(k) * uint64(k) * e // centroid-centroid matrix
	case PruneTI:
		b += uint64(n) * e
		b += uint64(k) * uint64(k) * e
		b += uint64(n) * uint64(k) * e // lower-bound matrix
	case PruneYinyang:
		b += uint64(n) * e                            // upper bounds
		b += uint64(n) * uint64(yinyangGroups(k)) * e // group bounds
	}
	return b
}

// nearest returns the index of and squared distance to the closest
// centroid (first index wins ties).
func nearest[T blas.Float](row []T, centroids *matrix.Mat[T]) (int, T) {
	best := inf[T]()
	bi := 0
	for c := 0; c < centroids.Rows(); c++ {
		if d := matrix.SqDist(row, centroids.Row(c)); d < best {
			best = d
			bi = c
		}
	}
	return bi, best
}
