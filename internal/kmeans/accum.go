package kmeans

import (
	"sync"

	"knor/internal/blas"
	"knor/internal/matrix"
)

// AccumOf is one thread's local centroid accumulator: running sums and
// counts for the next iteration's centroids (the ptC structure of
// Algorithm 1). Accums are merged pairwise in parallel at the end of
// each iteration — the funnelsort-like reduction of Section 5.2. It is
// generic over the element type; Accum is the float64 instantiation the
// oracle engines use.
type AccumOf[T blas.Float] struct {
	K, D  int
	Sum   []T     // k*d running sums
	Count []int64 // k memberships
}

// Accum is the float64 accumulator (bit-identical with the pre-generic
// implementation).
type Accum = AccumOf[float64]

// NewAccum allocates a zeroed float64 accumulator.
func NewAccum(k, d int) *Accum { return NewAccumOf[float64](k, d) }

// NewAccumOf allocates a zeroed accumulator of element type T.
func NewAccumOf[T blas.Float](k, d int) *AccumOf[T] {
	return &AccumOf[T]{K: k, D: d, Sum: make([]T, k*d), Count: make([]int64, k)}
}

// Reset zeroes the accumulator for the next iteration.
func (a *AccumOf[T]) Reset() {
	for i := range a.Sum {
		a.Sum[i] = 0
	}
	for i := range a.Count {
		a.Count[i] = 0
	}
}

// Add accumulates a row into cluster c.
func (a *AccumOf[T]) Add(row []T, c int) {
	dst := a.Sum[c*a.D : (c+1)*a.D]
	_ = row[len(dst)-1]
	for j := range dst {
		dst[j] += row[j]
	}
	a.Count[c]++
}

// Remove subtracts a row from cluster c (used for incremental updates
// where a row migrates between clusters without a full rebuild).
func (a *AccumOf[T]) Remove(row []T, c int) {
	dst := a.Sum[c*a.D : (c+1)*a.D]
	_ = row[len(dst)-1]
	for j := range dst {
		dst[j] -= row[j]
	}
	a.Count[c]--
}

// Merge folds other into a.
func (a *AccumOf[T]) Merge(other *AccumOf[T]) {
	for i := range a.Sum {
		a.Sum[i] += other.Sum[i]
	}
	for i := range a.Count {
		a.Count[i] += other.Count[i]
	}
}

// MergeTree reduces float64 accumulators into accs[0]. (Kept
// non-generic so untyped nil calls need no type argument; MergeTreeOf
// is the generic variant.)
func MergeTree(accs []*Accum) *Accum { return MergeTreeOf(accs) }

// MergeTreeOf reduces the accumulators into accs[0] with a parallel
// pairwise tree (O(log T) levels), matching the paper's reduction. The
// merge order is deterministic: level ℓ merges accs[i] ← accs[i+stride].
func MergeTreeOf[T blas.Float](accs []*AccumOf[T]) *AccumOf[T] {
	n := len(accs)
	if n == 0 {
		return nil
	}
	for stride := 1; stride < n; stride *= 2 {
		var wg sync.WaitGroup
		for i := 0; i+stride < n; i += 2 * stride {
			wg.Add(1)
			go func(dst, src int) {
				defer wg.Done()
				accs[dst].Merge(accs[src])
			}(i, i+stride)
		}
		wg.Wait()
	}
	return accs[0]
}

// Centroids finalises the accumulator into mean centroids. Clusters
// with no members keep their previous centroid (prev row), the standard
// empty-cluster policy for Lloyd's.
func (a *AccumOf[T]) Centroids(prev *matrix.Mat[T]) *matrix.Mat[T] {
	out := matrix.New[T](a.K, a.D)
	for c := 0; c < a.K; c++ {
		row := out.Row(c)
		if a.Count[c] == 0 {
			copy(row, prev.Row(c))
			continue
		}
		inv := 1 / T(a.Count[c])
		src := a.Sum[c*a.D : (c+1)*a.D]
		for j := range row {
			row[j] = src[j] * inv
		}
	}
	return out
}

// SerializedBytes returns the wire size of the accumulator (k*d sums +
// k counts), the payload knord's allreduce moves per machine.
func (a *AccumOf[T]) SerializedBytes() int {
	return a.K*a.D*blas.ElemBytes[T]() + a.K*8
}
