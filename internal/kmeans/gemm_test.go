package kmeans

import (
	"testing"
)

func TestGEMMMatchesSerial(t *testing.T) {
	data := testData(900, 8, 5, 51)
	serial, _ := RunSerial(data, baseCfg(5))
	res, err := RunGEMM(data, baseCfg(5), 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != serial.Iters {
		t.Fatalf("iters %d vs %d", res.Iters, serial.Iters)
	}
	for i := range serial.Assign {
		if serial.Assign[i] != res.Assign[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-6) {
		t.Fatal("GEMM centroids differ beyond fp tolerance")
	}
}

func TestGEMMChunkBoundary(t *testing.T) {
	// n not divisible by chunk exercises the tail chunk.
	data := testData(257, 4, 3, 52)
	serial, _ := RunSerial(data, baseCfg(3))
	res, err := RunGEMM(data, baseCfg(3), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-6) {
		t.Fatal("tail chunk handled wrong")
	}
}

func TestIterativeCopyingMatchesSerial(t *testing.T) {
	data := testData(600, 6, 4, 53)
	serial, _ := RunSerial(data, baseCfg(4))
	res, err := RunIterativeCopying(data, baseCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("copying variant differs")
	}
}

func TestIterativeIndirectMatchesSerial(t *testing.T) {
	data := testData(600, 6, 4, 54)
	serial, _ := RunSerial(data, baseCfg(4))
	res, err := RunIterativeIndirect(data, baseCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("indirect variant differs")
	}
}

func TestMiniBatchReasonableQuality(t *testing.T) {
	data := testData(2000, 8, 5, 55)
	exact, _ := RunSerial(data, baseCfg(5))
	cfg := baseCfg(5)
	cfg.MaxIters = 200
	cfg.Tol = 1e-4
	res, err := RunMiniBatch(data, cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	// The approximation should land within a modest factor of exact.
	if res.SSE > exact.SSE*5 {
		t.Fatalf("minibatch SSE %g vs exact %g", res.SSE, exact.SSE)
	}
	if len(res.Assign) != 2000 {
		t.Fatal("missing final assignment")
	}
}

func TestMiniBatchSmallBatchClamped(t *testing.T) {
	data := testData(50, 4, 3, 56)
	cfg := baseCfg(3)
	cfg.MaxIters = 10
	res, err := RunMiniBatch(data, cfg, 10000) // > n, must clamp
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations")
	}
}
