package kmeans

import (
	"math"

	"knor/internal/blas"
	"knor/internal/matrix"
)

// inf returns +Inf in T (exact at every width).
func inf[T blas.Float]() T { return T(math.Inf(1)) }

// sqrtT computes √x through float64 (widening float32 is exact, so the
// float64 path is unchanged and the float32 result is correctly
// rounded).
func sqrtT[T blas.Float](x T) T { return T(math.Sqrt(float64(x))) }

// PruneCounters tallies pruning behaviour within one iteration.
type PruneCounters struct {
	DistCalcs uint64 // exact distance computations
	C1        uint64 // rows skipped entirely (clause 1)
	C2        uint64 // candidates skipped pre-tighten (clause 2)
	C3        uint64 // candidates skipped post-tighten (clause 3)
}

// Add accumulates other into c.
func (c *PruneCounters) Add(o PruneCounters) {
	c.DistCalcs += o.DistCalcs
	c.C1 += o.C1
	c.C2 += o.C2
	c.C3 += o.C3
}

// PruneStateOf holds the triangle-inequality bound state shared by the
// in-memory, SEM and distributed engines, generic over the element
// type. PruneState is the float64 instantiation.
//
// MTI (the paper's contribution) keeps an O(n) upper bound per row plus
// an O(k²) centroid-to-centroid half-distance structure — three of
// Elkan's four pruning clauses without the O(nk) lower-bound matrix.
// PruneTI adds that matrix for the full Elkan comparison.
//
// At float32 the bound comparisons are performed in float32: the bounds
// themselves are computed from correctly-rounded distances, so pruning
// decisions can differ from the float64 engine near ties — the float32
// engines carry a relative-error contract, not bit-identity.
type PruneStateOf[T blas.Float] struct {
	Mode   Prune
	N, K   int
	Assign []int32
	UB     []T // upper bound of d(v, assigned centroid); pruned modes
	CC     []T // k×k centroid pairwise distances (MTI/TI)
	SHalf  []T // 0.5 × min distance from centroid c to any other
	LB     []T // n×k lower bounds (TI only)
	Drift  []T // per-centroid movement after last update

	// Yinyang group state (PruneYinyang only).
	T            int     // group count, ~k/10
	GroupOf      []int   // centroid -> group
	GroupMembers [][]int // group -> member centroids
	LBG          []T     // n×t per-group lower bounds
	GroupDrift   []T     // per-group max drift
}

// PruneState is the float64 bound state of the oracle engines.
type PruneState = PruneStateOf[float64]

// NewPruneState allocates float64 state for n rows and k clusters.
func NewPruneState(mode Prune, n, k int) *PruneState {
	return NewPruneStateOf[float64](mode, n, k)
}

// NewPruneStateOf allocates state of element type T for n rows and k
// clusters.
func NewPruneStateOf[T blas.Float](mode Prune, n, k int) *PruneStateOf[T] {
	p := &PruneStateOf[T]{Mode: mode, N: n, K: k, Assign: make([]int32, n)}
	for i := range p.Assign {
		p.Assign[i] = -1
	}
	switch mode {
	case PruneMTI, PruneTI:
		p.UB = make([]T, n)
		p.CC = make([]T, k*k)
		p.SHalf = make([]T, k)
		p.Drift = make([]T, k)
		if mode == PruneTI {
			p.LB = make([]T, n*k)
		}
	case PruneYinyang:
		p.UB = make([]T, n)
		p.Drift = make([]T, k)
		p.initYinyang(k)
	}
	return p
}

// MemoryBytes reports the bound-state footprint, the quantity Table 1
// and Figure 8c track. Bound arrays are element-sized, so the float32
// engines report half the bound memory.
func (p *PruneStateOf[T]) MemoryBytes() uint64 {
	eb := uint64(blas.ElemBytes[T]())
	b := uint64(len(p.Assign)) * 4
	b += uint64(len(p.UB)+len(p.CC)+len(p.SHalf)+len(p.LB)+len(p.Drift)) * eb
	b += uint64(len(p.LBG)+len(p.GroupDrift)) * eb
	b += uint64(len(p.GroupOf)) * 8
	return b
}

// UpdateCentroidDists refreshes CC and SHalf for the iteration's
// centroids. Cost O(k²d); every engine calls it once per iteration.
func (p *PruneStateOf[T]) UpdateCentroidDists(cents *matrix.Mat[T]) {
	if p.Mode == PruneNone || p.Mode == PruneYinyang {
		return // Yinyang keeps no centroid-to-centroid structure
	}
	k := p.K
	for a := 0; a < k; a++ {
		p.CC[a*k+a] = 0
		for b := a + 1; b < k; b++ {
			d := matrix.Dist(cents.Row(a), cents.Row(b))
			p.CC[a*k+b] = d
			p.CC[b*k+a] = d
		}
	}
	for c := 0; c < k; c++ {
		m := inf[T]()
		for o := 0; o < k; o++ {
			if o != c && p.CC[c*k+o] < m {
				m = p.CC[c*k+o]
			}
		}
		p.SHalf[c] = 0.5 * m
	}
}

// NeedsRow reports whether row i's data must be touched this iteration.
// For MTI/TI this is the negation of Clause 1: if the upper bound is
// within half the distance to the nearest other centroid, the row
// cannot change membership and — crucially for knors — needs no I/O.
func (p *PruneStateOf[T]) NeedsRow(i int) bool {
	switch p.Mode {
	case PruneNone:
		return true
	case PruneYinyang:
		return p.yinyangNeedsRow(i)
	}
	b := p.Assign[i]
	if b < 0 {
		return true
	}
	return p.UB[i] > p.SHalf[b]
}

// AssignRow (re)assigns row i given its data, assuming NeedsRow(i)
// returned true (the engine counts clause-1 skips itself via
// CountClause1). Returns whether membership changed.
func (p *PruneStateOf[T]) AssignRow(i int, row []T, cents *matrix.Mat[T], ctr *PruneCounters) bool {
	if p.Mode == PruneYinyang {
		if p.Assign[i] < 0 {
			return p.yinyangExact(i, row, cents, ctr)
		}
		return p.yinyangAssign(i, row, cents, ctr)
	}
	if p.Mode == PruneNone || p.Assign[i] < 0 {
		return p.assignExact(i, row, cents, ctr)
	}
	k := p.K
	b := int(p.Assign[i])
	u := p.UB[i]
	tight := false
	for c := 0; c < k; c++ {
		if c == b {
			continue
		}
		bound := 0.5 * p.CC[b*k+c]
		if p.Mode == PruneTI && p.LB[i*k+c] > bound {
			bound = p.LB[i*k+c]
		}
		if u <= bound {
			if tight {
				ctr.C3++
			} else {
				ctr.C2++
			}
			continue
		}
		if !tight {
			u = matrix.Dist(row, cents.Row(b))
			ctr.DistCalcs++
			tight = true
			if p.Mode == PruneTI {
				p.LB[i*k+b] = u
			}
			// Re-check this candidate with the exact bound (clause 3).
			if u <= bound {
				ctr.C3++
				continue
			}
		}
		d := matrix.Dist(row, cents.Row(c))
		ctr.DistCalcs++
		if p.Mode == PruneTI {
			p.LB[i*k+c] = d
		}
		if d < u {
			b = c
			u = d
		}
	}
	changed := int32(b) != p.Assign[i]
	p.Assign[i] = int32(b)
	p.UB[i] = u
	return changed
}

// assignExact performs the unpruned argmin scan, also priming bounds
// when pruning is enabled (used for iteration 0 and PruneNone). The
// PruneNone/MTI paths compare squared distances — no per-candidate
// sqrt — which is what keeps the serial baseline competitive with the
// fused iterative kernels of Table 3. Full TI needs every true
// distance to prime its lower-bound matrix.
func (p *PruneStateOf[T]) assignExact(i int, row []T, cents *matrix.Mat[T], ctr *PruneCounters) bool {
	k := p.K
	best := inf[T]()
	bi := 0
	ctr.DistCalcs += uint64(k) // counted per row, outside the hot loop
	if p.Mode == PruneTI {
		for c := 0; c < k; c++ {
			d := matrix.Dist(row, cents.Row(c))
			p.LB[i*k+c] = d
			if d < best {
				best = d
				bi = c
			}
		}
		p.UB[i] = best
	} else {
		for c := 0; c < k; c++ {
			d2 := matrix.SqDist(row, cents.Row(c))
			if d2 < best {
				best = d2
				bi = c
			}
		}
		if p.Mode == PruneMTI {
			p.UB[i] = sqrtT(best)
		}
	}
	changed := int32(bi) != p.Assign[i]
	p.Assign[i] = int32(bi)
	return changed
}

// UpdateAfterMove recomputes per-centroid drift after a centroid update
// and loosens the row bounds accordingly (ub += drift of its centroid;
// lb -= drift of each centroid). Returns total drift, the convergence
// quantity f(c) summed over centroids. Safe for parallel row ranges via
// LoosenRows; this single-threaded variant loosens everything.
func (p *PruneStateOf[T]) UpdateAfterMove(old, next *matrix.Mat[T]) float64 {
	total := 0.0
	if p.Mode == PruneNone {
		for c := 0; c < p.K; c++ {
			total += float64(matrix.Dist(old.Row(c), next.Row(c)))
		}
		return total
	}
	total = p.ComputeDrift(old, next)
	p.LoosenRows(0, p.N)
	return total
}

// ComputeDrift fills Drift without touching row bounds (engines that
// loosen rows in parallel call this then LoosenRows per range).
func (p *PruneStateOf[T]) ComputeDrift(old, next *matrix.Mat[T]) float64 {
	total := 0.0
	if p.Mode == PruneNone {
		for c := 0; c < p.K; c++ {
			total += float64(matrix.Dist(old.Row(c), next.Row(c)))
		}
		return total
	}
	if p.Mode == PruneYinyang {
		return p.yinyangComputeDrift(old, next)
	}
	for c := 0; c < p.K; c++ {
		p.Drift[c] = matrix.Dist(old.Row(c), next.Row(c))
		total += float64(p.Drift[c])
	}
	return total
}

// LoosenRows applies the post-update bound adjustment to rows [lo, hi).
func (p *PruneStateOf[T]) LoosenRows(lo, hi int) {
	if p.Mode == PruneNone {
		return
	}
	if p.Mode == PruneYinyang {
		p.yinyangLoosen(lo, hi)
		return
	}
	k := p.K
	for i := lo; i < hi; i++ {
		a := p.Assign[i]
		if a >= 0 {
			p.UB[i] += p.Drift[a]
		}
		if p.Mode == PruneTI {
			lb := p.LB[i*k : (i+1)*k]
			for c := 0; c < k; c++ {
				lb[c] -= p.Drift[c]
				if lb[c] < 0 {
					lb[c] = 0
				}
			}
		}
	}
}
