package kmeans

import (
	"testing"

	"knor/internal/matrix"
	"knor/internal/workload"
)

func TestRunMiniBatchDeterministic(t *testing.T) {
	data := workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: 3000, D: 6, Clusters: 5, Spread: 0.05, Seed: 4,
	})
	cfg := Config{K: 5, MaxIters: 40, Seed: 9, Init: InitKMeansPP}
	a, err := RunMiniBatch(data, cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMiniBatch(data, cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Centroids.Equal(b.Centroids, 0) {
		t.Fatal("same seed produced different centroids")
	}
	if a.SSE != b.SSE || a.Iters != b.Iters {
		t.Fatalf("same seed produced different runs: %v/%v vs %v/%v", a.SSE, a.Iters, b.SSE, b.Iters)
	}
}

func TestRunMiniBatchNearOracleOnSeparatedClusters(t *testing.T) {
	data := workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: 5000, D: 8, Clusters: 6, Spread: 0.03, Seed: 5,
	})
	cfg := Config{K: 6, Init: InitKMeansPP, Seed: 5}
	oracle, err := RunSerial(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mbCfg := cfg
	mbCfg.MaxIters = 60
	mb, err := RunMiniBatch(data, mbCfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	if mb.SSE > 1.05*oracle.SSE {
		t.Fatalf("mini-batch SSE %.6g not within 5%% of oracle %.6g", mb.SSE, oracle.SSE)
	}
}

func TestMiniBatchStateFold(t *testing.T) {
	seeds, _ := matrix.FromRows([][]float64{{0, 0}, {10, 10}})
	st := NewMiniBatchState(seeds)
	// Mutating the seed matrix must not affect the state (it clones).
	seeds.Set(0, 0, 99)
	if st.Centroids.At(0, 0) != 0 {
		t.Fatal("state aliased the seed centroids")
	}
	// First fold: eta = 1, centroid jumps to the row.
	if c := st.Fold([]float64{2, 0}); c != 0 {
		t.Fatalf("folded into centroid %d", c)
	}
	if st.Centroids.At(0, 0) != 2 || st.Counts[0] != 1 {
		t.Fatalf("after first fold: %v counts %v", st.Centroids.Row(0), st.Counts)
	}
	// Second fold of the same point: eta = 1/2, midpoint.
	st.Fold([]float64{4, 0})
	if got := st.Centroids.At(0, 0); got != 3 {
		t.Fatalf("after second fold: %v, want 3", got)
	}
	// Clone independence.
	cl := st.Clone()
	cl.Fold([]float64{100, 0})
	if st.Centroids.At(0, 0) != 3 || st.Counts[0] != 2 {
		t.Fatal("clone shares state with original")
	}
	// Dim mismatch is rejected.
	if _, err := st.FoldMatrix(matrix.NewDense(1, 5)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	// FoldMatrix reports drift.
	b, _ := matrix.FromRows([][]float64{{5, 0}})
	drift, err := st.FoldMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if drift <= 0 {
		t.Fatalf("drift = %v", drift)
	}
}
