package sem

import (
	"testing"

	"knor/internal/kmeans"
	"knor/internal/matrix"
)

func TestSEMPageSpanningRows(t *testing.T) {
	// d=65 makes rows 520 bytes — not a divisor of 4096, so rows span
	// page boundaries and the page translation must stay correct.
	data := matrix.NewDense(500, 65)
	for i := 0; i < 500; i++ {
		for j := 0; j < 65; j++ {
			data.Set(i, j, float64((i*65+j)%97)/97)
		}
	}
	serial, err := kmeans.RunSerial(data, kmeans.Config{K: 4, MaxIters: 30, Init: kmeans.InitForgy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := semCfg(4, 2)
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("page-spanning rows broke the result")
	}
	// Fragmentation must be visible: reads exceed requests at the
	// device when a sparse row set hits spanning pages.
	var req, read uint64
	for _, st := range res.PerIter {
		req += st.BytesWanted
		read += st.BytesRead
	}
	if read == 0 || req == 0 {
		t.Fatal("no I/O recorded")
	}
}

func TestSEMICacheOne(t *testing.T) {
	// The most aggressive refresh schedule (1, 3, 7, 15, ...) must not
	// change results.
	data := semData(800, 8, 4, 301)
	serial, _ := kmeans.RunSerial(data, kmeans.Config{K: 4, MaxIters: 40, Init: kmeans.InitForgy, Seed: 1})
	cfg := semCfg(4, 2)
	cfg.ICache = 1
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("icache=1 changed the result")
	}
}

func TestSEMSingleThread(t *testing.T) {
	data := semData(400, 8, 3, 302)
	serial, _ := kmeans.RunSerial(data, kmeans.Config{K: 3, MaxIters: 40, Init: kmeans.InitForgy, Seed: 1})
	cfg := semCfg(3, 1)
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("single-thread SEM differs")
	}
}

func TestSEMSimTimeDeterministic(t *testing.T) {
	data := semData(1500, 16, 5, 303)
	cfg := semCfg(5, 4)
	a, _ := Run(data, cfg)
	b, _ := Run(data, cfg)
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("SEM sim time varies: %g vs %g", a.SimSeconds, b.SimSeconds)
	}
}

func TestSEMTinyDevicesAndCaches(t *testing.T) {
	data := semData(300, 8, 3, 304)
	cfg := semCfg(3, 2)
	cfg.Devices = 1
	cfg.PageCacheBytes = 1 // clamps to one page
	cfg.RowCacheBytes = 1  // clamps to one row
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations")
	}
}

func TestSEMValidation(t *testing.T) {
	data := semData(10, 4, 2, 305)
	cfg := semCfg(20, 2) // k > n
	if _, err := Run(data, cfg); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestSEMYinyang(t *testing.T) {
	data := semData(900, 8, 4, 306)
	serial, _ := kmeans.RunSerial(data, kmeans.Config{K: 4, MaxIters: 40, Init: kmeans.InitForgy, Seed: 1})
	cfg := semCfg(4, 2)
	cfg.Kmeans.Prune = kmeans.PruneYinyang
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("SEM yinyang differs from oracle")
	}
	// Yinyang's global filter must elide I/O too.
	late := res.PerIter[res.Iters-1]
	if res.Iters > 3 && late.BytesWanted >= uint64(900*8*8) {
		t.Fatal("yinyang global filter elided no I/O")
	}
}
