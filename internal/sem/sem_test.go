package sem

import (
	"path/filepath"
	"testing"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/workload"
)

func semData(n, d, clusters int, seed int64) *matrix.Dense {
	return workload.Generate(workload.Spec{
		Kind: workload.NaturalClusters, N: n, D: d,
		Clusters: clusters, Spread: 0.05, Seed: seed,
	})
}

func semCfg(k, threads int) Config {
	return Config{
		Kmeans: kmeans.Config{
			K: k, MaxIters: 60, Init: kmeans.InitForgy, Seed: 1,
			Threads: threads, TaskSize: 64, Prune: kmeans.PruneMTI,
		},
		Devices:        8,
		PageCacheBytes: 1 << 16, // small, so the row cache matters
		RowCacheBytes:  1 << 20,
	}
}

func TestSEMMatchesInMemory(t *testing.T) {
	data := semData(1500, 8, 6, 61)
	serialCfg := kmeans.Config{K: 6, MaxIters: 60, Init: kmeans.InitForgy, Seed: 1}
	serial, err := kmeans.RunSerial(data, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, prune := range []kmeans.Prune{kmeans.PruneNone, kmeans.PruneMTI} {
		for _, rcBytes := range []int{0, 1 << 20} {
			cfg := semCfg(6, 4)
			cfg.Kmeans.Prune = prune
			cfg.RowCacheBytes = rcBytes
			res, err := Run(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters != serial.Iters {
				t.Fatalf("prune=%v rc=%d: iters %d vs %d", prune, rcBytes, res.Iters, serial.Iters)
			}
			for i := range serial.Assign {
				if serial.Assign[i] != res.Assign[i] {
					t.Fatalf("prune=%v rc=%d: row %d differs", prune, rcBytes, i)
				}
			}
			if !serial.Centroids.Equal(res.Centroids, 1e-9) {
				t.Fatalf("prune=%v rc=%d: centroids differ", prune, rcBytes)
			}
		}
	}
}

func TestSEMClause1SkipsIO(t *testing.T) {
	// With MTI on clustered data, later iterations must request far
	// fewer bytes than n*d*8 — clause-1 rows issue no I/O at all.
	data := semData(3000, 8, 6, 62)
	cfg := semCfg(6, 2)
	cfg.Kmeans.Init = kmeans.InitKMeansPP // well-spread seeds
	cfg.RowCacheBytes = 0                 // isolate the pruning effect (knors-)
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters < 4 {
		t.Skip("converged too quickly")
	}
	full := uint64(3000 * 8 * 8)
	late := res.PerIter[res.Iters-2]
	if late.BytesWanted >= full/2 {
		t.Fatalf("late iteration still requests %d of %d bytes", late.BytesWanted, full)
	}
	first := res.PerIter[0]
	if first.BytesWanted != full {
		t.Fatalf("first iteration requested %d, want %d", first.BytesWanted, full)
	}
}

func TestSEMReadAtLeastRequested(t *testing.T) {
	// Fragmentation: device reads are whole pages, so BytesRead >=
	// BytesWanted whenever the page cache can't absorb them, and both
	// appear in every iteration's stats.
	data := semData(2000, 8, 5, 63)
	cfg := semCfg(5, 2)
	cfg.RowCacheBytes = 0
	cfg.PageCacheBytes = 4096 // nearly no page cache
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PerIter {
		if st.BytesWanted > 0 && st.BytesRead < st.BytesWanted {
			t.Fatalf("iter %d: read %d < requested %d with no caches",
				st.Iter, st.BytesRead, st.BytesWanted)
		}
	}
}

func TestSEMRowCacheReducesReads(t *testing.T) {
	data := semData(4000, 16, 6, 64)
	run := func(rcBytes int) (*kmeans.Result, uint64) {
		cfg := semCfg(6, 4)
		cfg.Kmeans.MaxIters = 40
		cfg.Kmeans.Tol = -1 // run all iterations
		cfg.RowCacheBytes = rcBytes
		cfg.PageCacheBytes = 1 << 14
		res, err := Run(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var read uint64
		for _, st := range res.PerIter {
			read += st.BytesRead
		}
		return res, read
	}
	withRC, readRC := run(1 << 22)
	withoutRC, readNoRC := run(0)
	if readRC >= readNoRC {
		t.Fatalf("row cache did not reduce reads: %d vs %d", readRC, readNoRC)
	}
	if !withRC.Centroids.Equal(withoutRC.Centroids, 1e-9) {
		t.Fatal("row cache changed the result")
	}
	// And hits must be recorded after the first refresh (iter 5).
	var hits uint64
	for _, st := range withRC.PerIter {
		hits += st.RowCacheHits
	}
	if hits == 0 {
		t.Fatal("no row cache hits recorded")
	}
}

func TestSEMHitsBoundedByActive(t *testing.T) {
	data := semData(2000, 8, 5, 65)
	cfg := semCfg(5, 2)
	res, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PerIter {
		if st.RowCacheHits > uint64(st.ActiveRows) {
			t.Fatalf("iter %d: hits %d > active %d", st.Iter, st.RowCacheHits, st.ActiveRows)
		}
	}
}

func TestSEMMemoryBelowInMemory(t *testing.T) {
	// Table 1/Figure 9c: knors memory excludes the nd data and must be
	// far below knori's for wide data.
	data := semData(5000, 32, 5, 66)
	cfg := semCfg(5, 4)
	cfg.PageCacheBytes = 1 << 16
	cfg.RowCacheBytes = 1 << 16
	semRes, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imCfg := cfg.Kmeans
	imRes, err := kmeans.Run(data, imCfg)
	if err != nil {
		t.Fatal(err)
	}
	if semRes.MemoryBytes >= imRes.MemoryBytes {
		t.Fatalf("SEM memory %d not below in-memory %d", semRes.MemoryBytes, imRes.MemoryBytes)
	}
}

func TestRowCacheRefreshSchedule(t *testing.T) {
	rc := NewRowCache(1000, 64, 2, 1<<20, 5)
	want := map[int]bool{5: true, 15: true, 35: true, 75: true}
	for iter := 0; iter < 80; iter++ {
		if rc.IsRefreshIteration(iter) != want[iter] {
			t.Fatalf("iter %d: refresh=%v", iter, rc.IsRefreshIteration(iter))
		}
		if rc.IsRefreshIteration(iter) {
			rc.BeginRefresh()
		}
	}
	if rc.Refreshes() != 4 {
		t.Fatalf("refreshes = %d", rc.Refreshes())
	}
}

func TestRowCacheCapacity(t *testing.T) {
	rc := NewRowCache(1000, 100, 4, 1000, 5) // 10 rows, 2 per partition
	if rc.CapacityRows() != 10 {
		t.Fatalf("capacity %d", rc.CapacityRows())
	}
	for i := int32(0); i < 1000; i += 10 {
		rc.Offer(i)
	}
	if rc.Len() > 10 {
		t.Fatalf("cache overfilled: %d rows", rc.Len())
	}
}

func TestRowCacheHitCounting(t *testing.T) {
	rc := NewRowCache(100, 64, 1, 1<<20, 5)
	rc.Offer(7)
	if !rc.Contains(7) {
		t.Fatal("offered row missing")
	}
	if rc.Contains(8) {
		t.Fatal("phantom row")
	}
	if rc.Hits() != 1 {
		t.Fatalf("hits = %d", rc.Hits())
	}
	rc.BeginRefresh()
	if rc.Contains(7) {
		t.Fatal("refresh did not flush")
	}
}

func TestCheckpointRestoreResumesExactly(t *testing.T) {
	data := semData(1200, 8, 5, 67)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")

	// Uninterrupted run.
	cfg := semCfg(5, 2)
	ref, err := Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Run 4 iterations, checkpoint, then "crash".
	e1, err := New(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh engine and finish.
	e2, err := New(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.RestoreEngine(path); err != nil {
		t.Fatal(err)
	}
	if e2.Iter() != 4 {
		t.Fatalf("restored iter = %d", e2.Iter())
	}
	res, err := e2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Centroids.Equal(res.Centroids, 1e-9) {
		t.Fatal("recovered run diverged from uninterrupted run")
	}
	for i := range ref.Assign {
		if ref.Assign[i] != res.Assign[i] {
			t.Fatalf("row %d differs after recovery", i)
		}
	}
}

func TestCheckpointShapeMismatchRejected(t *testing.T) {
	data := semData(500, 8, 4, 68)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	e1, _ := New(data, semCfg(4, 2))
	e1.Step()
	if err := e1.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	other := semData(500, 8, 4, 68)
	e2, _ := New(other, semCfg(5, 2)) // different k
	if err := e2.RestoreEngine(path); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestCheckpointAutoEvery(t *testing.T) {
	data := semData(600, 8, 4, 69)
	dir := t.TempDir()
	cfg := semCfg(4, 2)
	cfg.CheckpointPath = filepath.Join(dir, "auto.bin")
	cfg.CheckpointEvery = 2
	if _, err := Run(data, cfg); err != nil {
		t.Fatal(err)
	}
	e, _ := New(data, cfg)
	if err := e.RestoreEngine(cfg.CheckpointPath); err != nil {
		t.Fatalf("auto checkpoint unreadable: %v", err)
	}
	if e.Iter() == 0 {
		t.Fatal("auto checkpoint has no progress")
	}
}

func TestRestoreMissingFile(t *testing.T) {
	data := semData(100, 4, 3, 70)
	e, _ := New(data, semCfg(3, 1))
	if err := e.RestoreEngine(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}
