// Package sem implements knors, the semi-external-memory k-means
// module: O(n) algorithm state in memory, O(nd) row data streamed from
// a simulated SSD array (package ssd), a partitioned lazily-updated row
// cache (Section 6.2.2), asynchronous I/O overlap, and lightweight
// checkpointing.
package sem

import (
	"sync"
	"sync/atomic"
)

// DefaultICache is the paper's row-cache update interval (I_cache = 5
// for all experiments in the evaluation).
const DefaultICache = 5

// RowCache is the partitioned, lazily-updated row cache of Figure 3.
// It pins *rows* (not pages) in memory. The cache refreshes at
// iteration I_cache and then at exponentially growing intervals
// (2·I_cache, 4·I_cache, ...): row activation patterns stabilise as
// k-means converges, so a static cache achieves near-100% hit rates
// (Figure 7) while costing almost no maintenance.
//
// Partitions mirror the matrix partitions (generally one per thread);
// each is updated independently during a refresh iteration, so cache
// population needs no global lock.
//
// On the simulated backend entries carry no payload (the matrix is
// resident; pinning only elides simulated I/O). On the real file
// backend entries pin the row *data* via OfferData/Get, so the
// capacity bound is a genuine memory budget.
type RowCache struct {
	partitions   []rcPartition
	rowsPerPart  int
	capacityRows int

	icache      int
	nextRefresh int
	interval    int

	// hits is atomic: the compute pass counts cache hits from every
	// worker concurrently on the real backend's hot path.
	hits atomic.Uint64

	mu        sync.Mutex
	refreshes int
}

type rcPartition struct {
	mu   sync.Mutex
	rows map[int32][]float64 // nil value: pinned without payload (simulated backend)
	cap  int
}

// NewRowCache builds a cache over n rows of rowBytes each, split into
// nParts partitions, holding at most capacityBytes of row data. icache
// <= 0 uses DefaultICache.
func NewRowCache(n, rowBytes, nParts, capacityBytes, icache int) *RowCache {
	if nParts <= 0 {
		nParts = 1
	}
	if icache <= 0 {
		icache = DefaultICache
	}
	capRows := capacityBytes / rowBytes
	if capRows < 1 {
		capRows = 1
	}
	perPart := capRows / nParts
	if perPart < 1 {
		perPart = 1
	}
	c := &RowCache{
		partitions:   make([]rcPartition, nParts),
		rowsPerPart:  (n + nParts - 1) / nParts,
		capacityRows: capRows,
		icache:       icache,
		nextRefresh:  icache,
		interval:     icache,
	}
	for i := range c.partitions {
		c.partitions[i] = rcPartition{rows: make(map[int32][]float64), cap: perPart}
	}
	return c
}

// CapacityRows returns the total row capacity.
func (c *RowCache) CapacityRows() int { return c.capacityRows }

// Hits returns cumulative cache hits.
func (c *RowCache) Hits() uint64 { return c.hits.Load() }

// Refreshes returns how many refresh cycles have run.
func (c *RowCache) Refreshes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshes
}

// Len returns the resident row count.
func (c *RowCache) Len() int {
	total := 0
	for i := range c.partitions {
		c.partitions[i].mu.Lock()
		total += len(c.partitions[i].rows)
		c.partitions[i].mu.Unlock()
	}
	return total
}

func (c *RowCache) part(row int32) *rcPartition {
	p := int(row) / c.rowsPerPart
	if p >= len(c.partitions) {
		p = len(c.partitions) - 1
	}
	return &c.partitions[p]
}

// Contains reports whether a row is pinned, counting a hit if so.
func (c *RowCache) Contains(row int32) bool {
	_, ok := c.Get(row)
	return ok
}

// Get returns a pinned row's payload (nil for payload-free entries on
// the simulated backend), counting a hit when present. The returned
// slice is owned by the cache and must not be mutated; it stays valid
// until the next BeginRefresh.
func (c *RowCache) Get(row int32) ([]float64, bool) {
	p := c.part(row)
	p.mu.Lock()
	vals, ok := p.rows[row]
	p.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return vals, ok
}

// Peek reports residency without touching the hit statistics (the
// prefetch planner's probe).
func (c *RowCache) Peek(row int32) bool {
	p := c.part(row)
	p.mu.Lock()
	_, ok := p.rows[row]
	p.mu.Unlock()
	return ok
}

// Wants reports whether an Offer for this row would pin it: not
// already present and its partition has room. Lets the file backend
// skip fetching payloads the cache would reject.
func (c *RowCache) Wants(row int32) bool {
	p := c.part(row)
	p.mu.Lock()
	_, present := p.rows[row]
	room := len(p.rows) < p.cap
	p.mu.Unlock()
	return !present && room
}

// IsRefreshIteration reports whether the cache repopulates during the
// given iteration (lazy doubling schedule).
func (c *RowCache) IsRefreshIteration(iter int) bool {
	return iter == c.nextRefresh
}

// BeginRefresh flushes all partitions at the start of a refresh
// iteration and schedules the next refresh at double the interval.
func (c *RowCache) BeginRefresh() {
	for i := range c.partitions {
		p := &c.partitions[i]
		p.mu.Lock()
		p.rows = make(map[int32][]float64)
		p.mu.Unlock()
	}
	c.mu.Lock()
	c.interval *= 2
	c.nextRefresh += c.interval
	c.refreshes++
	c.mu.Unlock()
}

// Offer pins a row during a refresh iteration if its partition has
// room, without payload (simulated backend). Outside refresh
// iterations the engine does not call Offer — the cache stays static.
func (c *RowCache) Offer(row int32) { c.OfferData(row, nil) }

// OfferData pins a row with its payload (copied) if its partition has
// room — the file backend's refill, where a later Get must serve the
// actual bytes.
func (c *RowCache) OfferData(row int32, vals []float64) {
	p := c.part(row)
	p.mu.Lock()
	if _, present := p.rows[row]; !present && len(p.rows) < p.cap {
		if vals != nil {
			vals = append([]float64(nil), vals...)
		}
		p.rows[row] = vals
	}
	p.mu.Unlock()
}

// MemoryBytes reports the cache's row-data footprint for the given row
// size (resident rows × rowBytes).
func (c *RowCache) MemoryBytes(rowBytes int) uint64 {
	return uint64(c.Len()) * uint64(rowBytes)
}
