package sem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Lightweight checkpointing, mirroring FlashGraph's in-memory failure
// tolerance: the O(n) algorithm state (assignment, upper bounds, global
// sums, centroids, iteration counter) is persisted; row data stays on
// the SSDs and is never part of a checkpoint. The row cache and page
// cache are deliberately excluded — they are rebuilt after recovery,
// costing only warm-up I/O, never correctness.

const ckptMagic = 0x4b43504b // "KCPK"

var errBadCheckpoint = errors.New("sem: bad checkpoint file")

// Checkpoint writes the engine's recoverable state to path atomically
// (write to temp, rename).
func (e *Engine) Checkpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	wr := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			w.Write(buf[:])
		}
	}
	wr(ckptMagic, uint64(e.iter), uint64(e.n), uint64(e.d), uint64(e.k))
	for _, v := range e.cents.Data {
		wr(math.Float64bits(v))
	}
	for _, a := range e.ps.Assign {
		wr(uint64(uint32(a)))
	}
	for _, v := range e.ps.UB {
		wr(math.Float64bits(v))
	}
	for _, v := range e.gsum.Sum {
		wr(math.Float64bits(v))
	}
	for _, c := range e.gsum.Count {
		wr(uint64(c))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreEngine loads a checkpoint into a freshly constructed engine.
// The engine must have been built with the same data and config shape
// (n, d, k are verified). The whole file is parsed into staging
// buffers before any engine state is touched: a truncated or corrupt
// checkpoint returns a descriptive error naming the damaged section
// and leaves the engine exactly as it was, never in a partial state.
func (e *Engine) RestoreEngine(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	readWords := func(section string, dst []uint64) error {
		var buf [8]byte
		for i := range dst {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return fmt.Errorf("sem: checkpoint %s: truncated in %s section (word %d of %d): %w",
					path, section, i, len(dst), err)
			}
			dst[i] = binary.LittleEndian.Uint64(buf[:])
		}
		return nil
	}

	hdr := make([]uint64, 5)
	if err := readWords("header", hdr); err != nil {
		return err
	}
	if hdr[0] != ckptMagic {
		return fmt.Errorf("%w: %s has magic %#x", errBadCheckpoint, path, hdr[0])
	}
	iterV, nV, dV, kV := hdr[1], hdr[2], hdr[3], hdr[4]
	if int(nV) != e.n || int(dV) != e.d || int(kV) != e.k {
		return fmt.Errorf("sem: checkpoint shape %dx%d k=%d does not match engine %dx%d k=%d",
			nV, dV, kV, e.n, e.d, e.k)
	}

	cents := make([]uint64, len(e.cents.Data))
	assign := make([]uint64, len(e.ps.Assign))
	ub := make([]uint64, len(e.ps.UB))
	sum := make([]uint64, len(e.gsum.Sum))
	count := make([]uint64, len(e.gsum.Count))
	for _, sec := range []struct {
		name string
		dst  []uint64
	}{
		{"centroids", cents},
		{"assignment", assign},
		{"upper-bounds", ub},
		{"global-sums", sum},
		{"cluster-counts", count},
	} {
		if err := readWords(sec.name, sec.dst); err != nil {
			return err
		}
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return fmt.Errorf("sem: checkpoint %s: trailing data after cluster-counts section", path)
	}

	// All sections parsed — commit atomically.
	for i, v := range cents {
		e.cents.Data[i] = math.Float64frombits(v)
	}
	for i, v := range assign {
		e.ps.Assign[i] = int32(uint32(v))
	}
	for i, v := range ub {
		e.ps.UB[i] = math.Float64frombits(v)
	}
	for i, v := range sum {
		e.gsum.Sum[i] = math.Float64frombits(v)
	}
	for i, v := range count {
		e.gsum.Count[i] = int64(v)
	}
	e.iter = int(iterV)
	e.converged = false
	// Bounds beyond UB (the TI lower-bound matrix) are not persisted;
	// reset them conservatively so pruning stays sound after recovery.
	if e.ps.LB != nil {
		for i := range e.ps.LB {
			e.ps.LB[i] = 0
		}
	}
	return nil
}
