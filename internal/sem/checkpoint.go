package sem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Lightweight checkpointing, mirroring FlashGraph's in-memory failure
// tolerance: the O(n) algorithm state (assignment, upper bounds, global
// sums, centroids, iteration counter) is persisted; row data stays on
// the SSDs and is never part of a checkpoint. The row cache and page
// cache are deliberately excluded — they are rebuilt after recovery,
// costing only warm-up I/O, never correctness.

const ckptMagic = 0x4b43504b // "KCPK"

var errBadCheckpoint = errors.New("sem: bad checkpoint file")

// Checkpoint writes the engine's recoverable state to path atomically
// (write to temp, rename).
func (e *Engine) Checkpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	wr := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			w.Write(buf[:])
		}
	}
	wr(ckptMagic, uint64(e.iter), uint64(e.n), uint64(e.d), uint64(e.k))
	for _, v := range e.cents.Data {
		wr(math.Float64bits(v))
	}
	for _, a := range e.ps.Assign {
		wr(uint64(uint32(a)))
	}
	for _, v := range e.ps.UB {
		wr(math.Float64bits(v))
	}
	for _, v := range e.gsum.Sum {
		wr(math.Float64bits(v))
	}
	for _, c := range e.gsum.Count {
		wr(uint64(c))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreEngine loads a checkpoint into a freshly constructed engine.
// The engine must have been built with the same data and config shape
// (n, d, k are verified).
func (e *Engine) RestoreEngine(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	rd := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := rd()
	if err != nil || magic != ckptMagic {
		return errBadCheckpoint
	}
	iterV, _ := rd()
	nV, _ := rd()
	dV, _ := rd()
	kV, err := rd()
	if err != nil {
		return errBadCheckpoint
	}
	if int(nV) != e.n || int(dV) != e.d || int(kV) != e.k {
		return fmt.Errorf("sem: checkpoint shape %dx%d k=%d does not match engine %dx%d k=%d",
			nV, dV, kV, e.n, e.d, e.k)
	}
	for i := range e.cents.Data {
		v, err := rd()
		if err != nil {
			return errBadCheckpoint
		}
		e.cents.Data[i] = math.Float64frombits(v)
	}
	for i := range e.ps.Assign {
		v, err := rd()
		if err != nil {
			return errBadCheckpoint
		}
		e.ps.Assign[i] = int32(uint32(v))
	}
	for i := range e.ps.UB {
		v, err := rd()
		if err != nil {
			return errBadCheckpoint
		}
		e.ps.UB[i] = math.Float64frombits(v)
	}
	for i := range e.gsum.Sum {
		v, err := rd()
		if err != nil {
			return errBadCheckpoint
		}
		e.gsum.Sum[i] = math.Float64frombits(v)
	}
	for i := range e.gsum.Count {
		v, err := rd()
		if err != nil {
			return errBadCheckpoint
		}
		e.gsum.Count[i] = int64(v)
	}
	e.iter = int(iterV)
	e.converged = false
	// Bounds beyond UB (the TI lower-bound matrix) are not persisted;
	// reset them conservatively so pruning stays sound after recovery.
	if e.ps.LB != nil {
		for i := range e.ps.LB {
			e.ps.LB[i] = 0
		}
	}
	return nil
}
