package sem

import "knor/internal/telemetry"

// Engine-level instruments, registered at init against
// telemetry.Default. Aggregated over every engine in the process — the
// per-iteration breakdown stays in kmeans.IterStats, the exposition
// answers "how is the SEM pass progressing" for dashboards.
var (
	telIterations = telemetry.Default.Counter("knor_sem_iterations_total",
		"SEM iterations completed.")
	telActiveRows = telemetry.Default.Counter("knor_sem_active_rows_total",
		"Rows that needed computation, summed over iterations (pruned rows excluded).")
	telBytesWanted = telemetry.Default.Counter("knor_sem_bytes_wanted_total",
		"Bytes the algorithm requested from the backend, summed over iterations.")
	telBytesRead = telemetry.Default.Counter("knor_sem_bytes_read_total",
		"Bytes the backend read from the device, summed over iterations.")
	telRowCacheHits = telemetry.Default.Counter("knor_sem_rowcache_hits_total",
		"Row-cache hits, summed over iterations.")
	telIterSeconds = telemetry.Default.Histogram("knor_sem_iteration_seconds",
		"Wall-clock seconds per iteration (real backend only).",
		[]float64{1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 60})
	telDrift = telemetry.Default.Gauge("knor_sem_last_drift",
		"Centroid drift of the most recent iteration (convergence indicator).")
	telLastSSE = telemetry.Default.Gauge("knor_sem_last_sse",
		"Final SSE of the most recently finished run.")
)
