package sem

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ckptLayout returns the byte offset where each section of a
// checkpoint for an n×d, k-cluster engine begins (and the total size).
func ckptLayout(n, d, k int) (sections []struct {
	name string
	off  int
}, total int) {
	add := func(name string, bytes int) {
		sections = append(sections, struct {
			name string
			off  int
		}{name, total})
		total += bytes
	}
	add("header", 5*8)
	add("centroids", k*d*8)
	add("assignment", n*8)
	add("upper-bounds", n*8)
	add("global-sums", k*d*8)
	add("cluster-counts", k*8)
	return sections, total
}

func TestRestoreTruncationAtEverySectionBoundary(t *testing.T) {
	const n, d, k = 300, 8, 4
	data := semData(n, d, k, 91)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")

	e1, err := New(data, semCfg(k, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sections, total := ckptLayout(n, d, k)
	if len(raw) != total {
		t.Fatalf("checkpoint is %d bytes, layout says %d", len(raw), total)
	}

	for _, sec := range sections {
		// Truncate 4 bytes into the section: mid-word, so the reader
		// fails inside this section (not cleanly at its start).
		cut := sec.off + 4
		if cut > len(raw) {
			continue
		}
		trunc := filepath.Join(dir, "trunc-"+sec.name+".bin")
		if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e2, err := New(data, semCfg(k, 2))
		if err != nil {
			t.Fatal(err)
		}
		centsBefore := e2.cents.Clone()
		iterBefore := e2.Iter()

		rerr := e2.RestoreEngine(trunc)
		if rerr == nil {
			t.Fatalf("truncation in %s section accepted", sec.name)
		}
		if !strings.Contains(rerr.Error(), sec.name) {
			t.Fatalf("truncation in %s section reported as: %v", sec.name, rerr)
		}
		// The failed restore must not leave partial state behind.
		if e2.Iter() != iterBefore {
			t.Fatalf("%s: failed restore advanced iter to %d", sec.name, e2.Iter())
		}
		if !e2.cents.Equal(centsBefore, 0) {
			t.Fatalf("%s: failed restore mutated centroids", sec.name)
		}
		// And the engine must still run to convergence afterwards.
		if _, err := e2.Finish(); err != nil {
			t.Fatalf("%s: engine unusable after failed restore: %v", sec.name, err)
		}
	}
}

func TestRestoreRejectsBadMagicAndTrailingData(t *testing.T) {
	const n, d, k = 200, 8, 3
	data := semData(n, d, k, 92)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	e1, err := New(data, semCfg(k, 2))
	if err != nil {
		t.Fatal(err)
	}
	e1.Step()
	if err := e1.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	bad := filepath.Join(dir, "badmagic.bin")
	corrupt := append([]byte(nil), raw...)
	corrupt[0] ^= 0xff
	os.WriteFile(bad, corrupt, 0o644)
	e2, _ := New(data, semCfg(k, 2))
	if err := e2.RestoreEngine(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}

	long := filepath.Join(dir, "trailing.bin")
	os.WriteFile(long, append(append([]byte(nil), raw...), 0xde, 0xad), 0o644)
	e3, _ := New(data, semCfg(k, 2))
	if err := e3.RestoreEngine(long); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data: %v", err)
	}

	// The pristine file still restores after all the rejected attempts.
	e4, _ := New(data, semCfg(k, 2))
	if err := e4.RestoreEngine(path); err != nil {
		t.Fatal(err)
	}
	if e4.Iter() != 1 {
		t.Fatalf("restored iter = %d", e4.Iter())
	}
}
