package sem

import (
	"knor/internal/matrix"
	"knor/internal/ssd"
	"knor/internal/store"
)

// RowSource is the storage backend a knors engine streams row data
// from. Two implementations exist: the simulated SSD array (package
// ssd, used for the paper-figure reproductions) and a real on-disk
// store file (package store, used when the dataset genuinely does not
// fit in memory). Both report the same BytesWanted/BytesRead counter
// semantics, so Figure 6 is measurable on either.
type RowSource interface {
	Rows() int
	Cols() int
	// Cursor returns an independent row reader for one worker
	// goroutine. The slice returned by Row is valid until the next Row
	// call on the same cursor.
	Cursor() RowCursor
	// UntrackedCursor is Cursor, but its fetches stay out of the
	// requested-bytes counter (row-cache refills, SSE scans — reads
	// the simulated algorithm would not issue).
	UntrackedCursor() RowCursor
	// Prefetch hints that the given rows are about to be read on the
	// demand path. Real backends overlap the page fetches with
	// compute; the simulated backend ignores it (RAM is the device).
	Prefetch(rows []int32)
	// ReadRows settles one task's row-cache misses starting at
	// simulated time start and returns the I/O completion time. The
	// simulated backend charges its device queues and counters here;
	// real backends already performed (and counted) the I/O during
	// compute and return start unchanged.
	ReadRows(start float64, rows []int32) float64
	// Traffic returns cumulative requested and device-read bytes.
	Traffic() (requested, read uint64)
	// Real reports whether I/O happens for real (wall-clock timing,
	// data-bearing row cache) rather than against the simulator.
	Real() bool
}

// RowCursor yields rows for one worker. Not safe for concurrent use.
type RowCursor interface {
	Row(i int) ([]float64, error)
}

// --- simulated backend -------------------------------------------------

// simSource fronts an in-memory matrix with the simulated SAFS stack:
// row access is free (the data is resident), and I/O is charged
// deterministically during the replay pass.
type simSource struct {
	data    *matrix.Dense
	safs    *ssd.SAFS
	scratch []int // replay is single-threaded; reused across tasks
}

func (s *simSource) Rows() int { return s.data.Rows() }
func (s *simSource) Cols() int { return s.data.Cols() }

func (s *simSource) Cursor() RowCursor          { return memCursor{s.data} }
func (s *simSource) UntrackedCursor() RowCursor { return memCursor{s.data} }

func (s *simSource) Prefetch([]int32) {}

func (s *simSource) ReadRows(start float64, rows []int32) float64 {
	s.scratch = s.scratch[:0]
	for _, r := range rows {
		s.scratch = append(s.scratch, int(r))
	}
	end, _ := s.safs.ReadRows(start, s.scratch)
	return end
}

func (s *simSource) Traffic() (uint64, uint64) { return s.safs.Traffic() }
func (s *simSource) Real() bool                { return false }

type memCursor struct{ d *matrix.Dense }

func (c memCursor) Row(i int) ([]float64, error) { return c.d.Row(i), nil }

// --- real file backend -------------------------------------------------

// fileSource streams rows from an on-disk store file through its page
// cache and prefetch pool.
type fileSource struct{ f *store.File }

func (s fileSource) Rows() int { return s.f.Rows() }
func (s fileSource) Cols() int { return s.f.Cols() }

func (s fileSource) Cursor() RowCursor { return s.f.Reader() }

func (s fileSource) UntrackedCursor() RowCursor {
	r := s.f.Reader()
	r.Untracked = true
	return r
}

func (s fileSource) Prefetch(rows []int32) { s.f.Prefetch(rows) }

func (s fileSource) ReadRows(start float64, rows []int32) float64 { return start }

func (s fileSource) Traffic() (uint64, uint64) { return s.f.Traffic() }
func (s fileSource) Real() bool                { return true }

// --- cursor adapters ---------------------------------------------------

// normCursor normalises each fetched row to unit norm — the spherical
// variant on a streaming backend, where the source rows cannot be
// normalised in place. Applies exactly matrix.NormalizeRows's
// operation per row, so results match the in-memory clone path bit for
// bit.
type normCursor struct {
	inner RowCursor
	buf   []float64
}

func (c *normCursor) Row(i int) ([]float64, error) {
	row, err := c.inner.Row(i)
	if err != nil {
		return nil, err
	}
	copy(c.buf, row)
	if n := matrix.Norm(c.buf); n > 0 {
		matrix.Scale(c.buf, 1/n)
	}
	return c.buf, nil
}

// cursorRows adapts a RowCursor to kmeans.RowData for streaming
// centroid initialisation. Cursor errors are latched (initialisation
// helpers have no error path) and surfaced by the caller afterwards; a
// failed fetch yields a zero row so initialisation still terminates.
type cursorRows struct {
	cur  RowCursor
	n, d int
	zero []float64
	err  error
}

func (c *cursorRows) Rows() int { return c.n }
func (c *cursorRows) Cols() int { return c.d }

func (c *cursorRows) Row(i int) []float64 {
	row, err := c.cur.Row(i)
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		if c.zero == nil {
			c.zero = make([]float64, c.d)
		}
		return c.zero
	}
	return row
}
