package sem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/simclock"
	"knor/internal/ssd"
)

// Config controls a knors run: the embedded k-means algorithm config
// plus the storage stack.
type Config struct {
	Kmeans kmeans.Config

	// Devices is the SSD array width (the paper's machine has 24).
	Devices int
	// PageSize is the minimum read unit; 0 means ssd.DefaultPageSize.
	PageSize int
	// PageCacheBytes sizes the SAFS page cache.
	PageCacheBytes int
	// RowCacheBytes sizes the partitioned row cache; 0 disables it
	// (knors- when pruning is on, knors-- when pruning is off too).
	RowCacheBytes int
	// ICache is the row-cache refresh interval; 0 means DefaultICache.
	ICache int

	// CheckpointPath, when non-empty, enables lightweight checkpointing
	// every CheckpointEvery iterations (FlashGraph-style in-memory
	// failure tolerance).
	CheckpointPath  string
	CheckpointEvery int
}

func (c Config) withDefaults(n int) (Config, error) {
	var err error
	c.Kmeans, err = c.Kmeans.WithDefaults(n)
	if err != nil {
		return c, err
	}
	if c.Devices <= 0 {
		c.Devices = 24
	}
	if c.PageSize <= 0 {
		c.PageSize = ssd.DefaultPageSize
	}
	if c.PageCacheBytes <= 0 {
		c.PageCacheBytes = 1 << 30
	}
	if c.ICache <= 0 {
		c.ICache = DefaultICache
	}
	return c, nil
}

// Engine is the knors driver. Data passed to New is treated as
// resident on the simulated SSD array; only O(n) algorithm state plus
// the caches count as memory.
type Engine struct {
	data *matrix.Dense
	cfg  Config

	n, d, k int
	cents   *matrix.Dense
	ps      *kmeans.PruneState
	gsum    *kmeans.Accum
	deltas  []*kmeans.Accum
	group   *simclock.Group
	safs    *ssd.SAFS
	rc      *RowCache // nil when disabled

	tasks     []semTask
	iter      int
	converged bool
	perIter   []kmeans.IterStats
}

type semTask struct {
	lo, hi int
	worker int
	// per-iteration scratch, filled by the compute pass:
	active  []int32
	dists   uint64
	changed int
}

// New builds a knors engine over data.
func New(data *matrix.Dense, cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if cfg.Kmeans.Spherical {
		data = data.Clone()
		matrix.NormalizeRows(data)
	}
	n, d := data.Rows(), data.Cols()
	e := &Engine{data: data, cfg: cfg, n: n, d: d, k: cfg.Kmeans.K}
	e.cents = kmeans.InitCentroidsFor(data, cfg.Kmeans)
	if cfg.Kmeans.Spherical {
		matrix.NormalizeRows(e.cents)
	}
	e.ps = kmeans.NewPruneState(cfg.Kmeans.Prune, n, e.k)
	e.gsum = kmeans.NewAccum(e.k, d)
	e.deltas = make([]*kmeans.Accum, cfg.Kmeans.Threads)
	for i := range e.deltas {
		e.deltas[i] = kmeans.NewAccum(e.k, d)
	}
	e.group = simclock.NewGroup(cfg.Kmeans.Threads, cfg.Kmeans.Model)
	array := ssd.NewArray(cfg.Devices, cfg.PageSize, cfg.Kmeans.Model)
	e.safs = ssd.NewSAFS(array, cfg.PageCacheBytes, d*8)
	if cfg.RowCacheBytes > 0 {
		e.rc = NewRowCache(n, d*8, cfg.Kmeans.Threads, cfg.RowCacheBytes, cfg.ICache)
	}
	// FlashGraph partitions the matrix across threads; tasks are
	// contiguous blocks statically owned by partition threads.
	T := cfg.Kmeans.Threads
	ts := cfg.Kmeans.TaskSize
	for lo := 0; lo < n; lo += ts {
		hi := lo + ts
		if hi > n {
			hi = n
		}
		worker := lo * T / n
		if worker >= T {
			worker = T - 1
		}
		e.tasks = append(e.tasks, semTask{lo: lo, hi: hi, worker: worker})
	}
	return e, nil
}

// Run executes a fresh knors run to convergence.
func Run(data *matrix.Dense, cfg Config) (*kmeans.Result, error) {
	e, err := New(data, cfg)
	if err != nil {
		return nil, err
	}
	return e.Finish()
}

// Finish drives the engine from its current iteration to convergence
// and returns the result. It may be called after a Restore.
func (e *Engine) Finish() (*kmeans.Result, error) {
	for !e.converged && e.iter < e.cfg.Kmeans.MaxIters {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	return e.result(), nil
}

// Step runs exactly one iteration (exposed for checkpoint/recovery
// tests and incremental drivers).
func (e *Engine) Step() error {
	iter := e.iter
	model := e.cfg.Kmeans.Model
	startT := e.group.Clock(0).Now()
	e.ps.UpdateCentroidDists(e.cents)

	st := e.computePass(iter)
	st.Iter = iter

	merged := kmeans.MergeTree(e.deltas)
	e.gsum.Merge(merged)
	next := e.gsum.Centroids(e.cents)
	if e.cfg.Kmeans.Spherical {
		matrix.NormalizeRows(next)
	}
	drift := e.ps.ComputeDrift(e.cents, next)
	if e.cfg.Kmeans.Prune != kmeans.PruneNone {
		e.ps.LoosenRows(0, e.n)
	}
	e.cents = next
	st.Drift = drift

	e.replay(iter, &st)

	ccCost := float64(e.k*(e.k-1)/2) * model.DistanceCost(e.d)
	end := e.group.Barrier()
	for w := 0; w < e.cfg.Kmeans.Threads; w++ {
		e.group.Clock(w).Advance(ccCost)
	}
	end += ccCost
	st.SimSeconds = end - startT

	e.perIter = append(e.perIter, st)
	e.iter++
	if iter > 0 && (st.RowsChanged == 0 || drift <= e.cfg.Kmeans.Tol) {
		e.converged = true
	}
	if e.cfg.CheckpointPath != "" && e.cfg.CheckpointEvery > 0 && e.iter%e.cfg.CheckpointEvery == 0 {
		if err := e.Checkpoint(e.cfg.CheckpointPath); err != nil {
			return fmt.Errorf("sem: checkpoint: %w", err)
		}
	}
	return nil
}

// computePass runs the real parallel assignment pass and records each
// task's active rows for the deterministic I/O replay.
func (e *Engine) computePass(iter int) kmeans.IterStats {
	var cursor int64
	T := e.cfg.Kmeans.Threads
	type out struct {
		ctr     kmeans.PruneCounters
		changed int
	}
	outs := make([]out, T)
	var wg sync.WaitGroup
	for w := 0; w < T; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := &outs[w]
			delta := e.deltas[w]
			delta.Reset()
			for {
				ti := int(atomic.AddInt64(&cursor, 1)) - 1
				if ti >= len(e.tasks) {
					return
				}
				task := &e.tasks[ti]
				task.active = task.active[:0]
				before := o.ctr
				changedBefore := o.changed
				for i := task.lo; i < task.hi; i++ {
					if iter > 0 && !e.ps.NeedsRow(i) {
						o.ctr.C1++
						continue
					}
					task.active = append(task.active, int32(i))
					row := e.data.Row(i)
					old := e.ps.Assign[i]
					if e.ps.AssignRow(i, row, e.cents, &o.ctr) {
						o.changed++
						if old >= 0 {
							delta.Remove(row, int(old))
						}
						delta.Add(row, int(e.ps.Assign[i]))
					}
				}
				task.dists = o.ctr.DistCalcs - before.DistCalcs
				task.changed = o.changed - changedBefore
			}
		}(w)
	}
	wg.Wait()

	var st kmeans.IterStats
	changed := 0
	for i := range outs {
		st.DistCalcs += outs[i].ctr.DistCalcs
		st.PrunedC1 += outs[i].ctr.C1
		st.PrunedC2 += outs[i].ctr.C2
		st.PrunedC3 += outs[i].ctr.C3
		changed += outs[i].changed
	}
	st.RowsChanged = changed
	st.ActiveRows = e.n - int(st.PrunedC1)
	return st
}

// replay charges simulated time and I/O deterministically: tasks run on
// their owning partition's worker; active rows consult the row cache,
// misses go through SAFS (page cache → device array); compute overlaps
// the asynchronous I/O, so a task finishes at max(computeEnd, ioEnd).
func (e *Engine) replay(iter int, st *kmeans.IterStats) {
	model := e.cfg.Kmeans.Model
	reqBefore, readBefore := e.safs.Traffic()
	var hitsBefore uint64
	refresh := false
	if e.rc != nil {
		hitsBefore = e.rc.Hits()
		if e.rc.IsRefreshIteration(iter) {
			e.rc.BeginRefresh()
			refresh = true
		}
	}
	// Process tasks in earliest-worker order so simulated I/O issue
	// times are monotone — a call-order FIFO on the device resources
	// would otherwise let an eager worker's late-clock request inflate
	// the queue seen by a fresh worker's time-zero request.
	T := e.cfg.Kmeans.Threads
	queues := make([][]*semTask, T)
	for ti := range e.tasks {
		t := &e.tasks[ti]
		queues[t.worker] = append(queues[t.worker], t)
	}
	remaining := 0
	for _, q := range queues {
		if len(q) > 0 {
			remaining++
		}
	}
	var miss []int
	for remaining > 0 {
		w := -1
		for i := 0; i < T; i++ {
			if len(queues[i]) == 0 {
				continue
			}
			if w < 0 || e.group.Clock(i).Now() < e.group.Clock(w).Now() {
				w = i
			}
		}
		task := queues[w][0]
		queues[w] = queues[w][1:]
		if len(queues[w]) == 0 {
			remaining--
		}
		clock := e.group.Clock(w)
		ioStart := clock.Now()
		miss = miss[:0]
		for _, r := range task.active {
			if e.rc != nil {
				if refresh {
					// Refresh iteration: active rows do I/O and get
					// pinned for the coming static period.
					e.rc.Offer(r)
				} else if e.rc.Contains(r) {
					continue // row served from cache: no I/O
				}
			}
			miss = append(miss, int(r))
		}
		ioEnd, _ := e.safs.ReadRows(ioStart, miss)
		clock.Advance(float64(task.dists)*model.DistanceCost(e.d) +
			float64(task.hi-task.lo)*model.RowOverhead +
			float64(task.changed)*float64(2*e.d)*model.FlopTime)
		clock.AdvanceTo(ioEnd) // overlap: end at the later of compute/IO
	}
	req, read := e.safs.Traffic()
	st.BytesWanted = req - reqBefore
	st.BytesRead = read - readBefore
	if e.rc != nil {
		st.RowCacheHits = e.rc.Hits() - hitsBefore
	}
}

func (e *Engine) result() *kmeans.Result {
	res := &kmeans.Result{
		Centroids:  e.cents,
		Assign:     e.ps.Assign,
		Iters:      e.iter,
		Converged:  e.converged,
		SSE:        kmeans.SSEOf(e.data, e.cents, e.ps.Assign),
		SimSeconds: e.group.Max(),
		PerIter:    e.perIter,
	}
	res.Sizes = make([]int, e.k)
	for _, a := range e.ps.Assign {
		if a >= 0 {
			res.Sizes[a]++
		}
	}
	// SEM memory: O(n) state + per-thread centroids + caches — no nd
	// data term (Table 1's point).
	res.MemoryBytes = kmeans.StateBytes(e.n, e.d, e.k, e.cfg.Kmeans.Threads, e.cfg.Kmeans.Prune) +
		uint64(e.cfg.PageCacheBytes)
	if e.rc != nil {
		res.MemoryBytes += uint64(e.cfg.RowCacheBytes)
	}
	return res
}

// Iter returns the next iteration index (how many have completed).
func (e *Engine) Iter() int { return e.iter }

// SAFS exposes the I/O stack for inspection in tests and benches.
func (e *Engine) SAFS() *ssd.SAFS { return e.safs }

// RC exposes the row cache (nil when disabled).
func (e *Engine) RC() *RowCache { return e.rc }
