package sem

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/simclock"
	"knor/internal/ssd"
	"knor/internal/store"
)

// Config controls a knors run: the embedded k-means algorithm config
// plus the storage stack.
type Config struct {
	Kmeans kmeans.Config

	// Devices is the SSD array width (the paper's machine has 24).
	// Simulated backend only.
	Devices int
	// PageSize is the minimum read unit; 0 means ssd.DefaultPageSize.
	PageSize int
	// PageCacheBytes sizes the page cache (the SAFS cache on the
	// simulated backend, the store.File cache on the real one).
	PageCacheBytes int
	// RowCacheBytes sizes the partitioned row cache; 0 disables it
	// (knors- when pruning is on, knors-- when pruning is off too).
	// On the real file backend the row cache pins row *data*, so this
	// is a genuine memory budget there.
	RowCacheBytes int
	// ICache is the row-cache refresh interval; 0 means DefaultICache.
	ICache int
	// PrefetchWorkers sizes the file backend's asynchronous fetch pool
	// (0 disables prefetching). Ignored by the simulated backend.
	PrefetchWorkers int

	// CheckpointPath, when non-empty, enables lightweight checkpointing
	// every CheckpointEvery iterations (FlashGraph-style in-memory
	// failure tolerance).
	CheckpointPath  string
	CheckpointEvery int
}

func (c Config) withDefaults(n int) (Config, error) {
	var err error
	c.Kmeans, err = c.Kmeans.WithDefaults(n)
	if err != nil {
		return c, err
	}
	if c.Devices <= 0 {
		c.Devices = 24
	}
	if c.PageSize <= 0 {
		c.PageSize = ssd.DefaultPageSize
	}
	if c.PageCacheBytes <= 0 {
		c.PageCacheBytes = 1 << 30
	}
	if c.ICache <= 0 {
		c.ICache = DefaultICache
	}
	return c, nil
}

// Engine is the knors driver. Row data lives on the storage backend —
// the simulated SSD array (data passed to New is treated as resident
// there) or a real store file — and only O(n) algorithm state plus the
// caches count as memory.
type Engine struct {
	src RowSource
	// data is non-nil only on the simulated backend, where the matrix
	// is resident anyway; the oracle-identical init/SSE paths use it
	// directly. The file backend streams both.
	data *matrix.Dense
	cfg  Config

	n, d, k int
	cents   *matrix.Dense
	ps      *kmeans.PruneState
	gsum    *kmeans.Accum
	deltas  []*kmeans.Accum
	group   *simclock.Group
	safs    *ssd.SAFS // simulated backend only
	rc      *RowCache // nil when disabled

	tasks     []semTask
	iter      int
	converged bool
	perIter   []kmeans.IterStats
	wall      float64   // accumulated wall-clock seconds (real backend)
	owned     io.Closer // backend to close with the engine (NewFromFile)
}

type semTask struct {
	lo, hi int
	worker int
	// per-iteration scratch, filled by the compute pass:
	active  []int32 // rows that needed computation
	miss    []int32 // active rows not served by the row cache
	dists   uint64
	changed int
}

// New builds a knors engine over an in-memory matrix fronted by the
// simulated SSD array.
func New(data *matrix.Dense, cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults(data.Rows())
	if err != nil {
		return nil, err
	}
	if cfg.Kmeans.Spherical {
		data = data.Clone()
		matrix.NormalizeRows(data)
	}
	array := ssd.NewArray(cfg.Devices, cfg.PageSize, cfg.Kmeans.Model)
	safs := ssd.NewSAFS(array, cfg.PageCacheBytes, data.Cols()*8)
	e, err := newEngine(&simSource{data: data, safs: safs}, data, cfg)
	if err != nil {
		return nil, err
	}
	e.safs = safs
	return e, nil
}

// NewFromStore builds a knors engine streaming rows from an opened
// store file. The caller keeps ownership of f.
func NewFromStore(f *store.File, cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults(f.Rows())
	if err != nil {
		return nil, err
	}
	return newEngine(fileSource{f}, nil, cfg)
}

// NewFromFile opens path as a store file (sizing its page cache and
// prefetch pool from the config) and builds an engine that owns it;
// Close releases the file. The full matrix is never materialised —
// resident row data is bounded by PageCacheBytes + RowCacheBytes.
func NewFromFile(path string, cfg Config) (*Engine, error) {
	f, err := store.Open(path, store.Options{
		CacheBytes:      cfg.PageCacheBytes,
		PrefetchWorkers: cfg.PrefetchWorkers,
	})
	if err != nil {
		return nil, err
	}
	e, err := NewFromStore(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	e.owned = f
	return e, nil
}

// newEngine finishes construction over a prepared source. cfg already
// has defaults applied; data is non-nil only for the simulated path.
func newEngine(src RowSource, data *matrix.Dense, cfg Config) (*Engine, error) {
	n, d := src.Rows(), src.Cols()
	e := &Engine{src: src, data: data, cfg: cfg, n: n, d: d, k: cfg.Kmeans.K}
	if data != nil {
		e.cents = kmeans.InitCentroidsFor(data, cfg.Kmeans)
	} else {
		rows := &cursorRows{cur: e.untrackedCursor(), n: n, d: d}
		e.cents = kmeans.InitCentroidsFromRows(rows, cfg.Kmeans)
		if rows.err != nil {
			return nil, fmt.Errorf("sem: init: %w", rows.err)
		}
	}
	if cfg.Kmeans.Spherical {
		matrix.NormalizeRows(e.cents)
	}
	e.ps = kmeans.NewPruneState(cfg.Kmeans.Prune, n, e.k)
	e.gsum = kmeans.NewAccum(e.k, d)
	e.deltas = make([]*kmeans.Accum, cfg.Kmeans.Threads)
	for i := range e.deltas {
		e.deltas[i] = kmeans.NewAccum(e.k, d)
	}
	e.group = simclock.NewGroup(cfg.Kmeans.Threads, cfg.Kmeans.Model)
	if cfg.RowCacheBytes > 0 {
		e.rc = NewRowCache(n, d*8, cfg.Kmeans.Threads, cfg.RowCacheBytes, cfg.ICache)
	}
	// FlashGraph partitions the matrix across threads; tasks are
	// contiguous blocks statically owned by partition threads.
	T := cfg.Kmeans.Threads
	ts := cfg.Kmeans.TaskSize
	for lo := 0; lo < n; lo += ts {
		hi := lo + ts
		if hi > n {
			hi = n
		}
		worker := lo * T / n
		if worker >= T {
			worker = T - 1
		}
		e.tasks = append(e.tasks, semTask{lo: lo, hi: hi, worker: worker})
	}
	return e, nil
}

// cursor returns a tracked per-worker row reader, normalising on the
// fly when the spherical variant runs on a streaming backend (the
// simulated path normalised its resident clone up front).
func (e *Engine) cursor() RowCursor {
	c := e.src.Cursor()
	if e.cfg.Kmeans.Spherical && e.src.Real() {
		return &normCursor{inner: c, buf: make([]float64, e.d)}
	}
	return c
}

func (e *Engine) untrackedCursor() RowCursor {
	c := e.src.UntrackedCursor()
	if e.cfg.Kmeans.Spherical && e.src.Real() {
		return &normCursor{inner: c, buf: make([]float64, e.d)}
	}
	return c
}

// Run executes a fresh knors run to convergence.
func Run(data *matrix.Dense, cfg Config) (*kmeans.Result, error) {
	e, err := New(data, cfg)
	if err != nil {
		return nil, err
	}
	return e.Finish()
}

// RunFile executes a knors run streaming from a store file.
func RunFile(path string, cfg Config) (*kmeans.Result, error) {
	e, err := NewFromFile(path, cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Finish()
}

// Close releases a backend owned by the engine (NewFromFile). Engines
// over caller-owned sources close nothing and return nil.
func (e *Engine) Close() error {
	if e.owned != nil {
		err := e.owned.Close()
		e.owned = nil
		return err
	}
	return nil
}

// Finish drives the engine from its current iteration to convergence
// and returns the result. It may be called after a Restore.
func (e *Engine) Finish() (*kmeans.Result, error) {
	for !e.converged && e.iter < e.cfg.Kmeans.MaxIters {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	return e.result()
}

// Step runs exactly one iteration (exposed for checkpoint/recovery
// tests and incremental drivers).
func (e *Engine) Step() error {
	iter := e.iter
	real := e.src.Real()
	model := e.cfg.Kmeans.Model
	var t0 time.Time
	if real {
		t0 = time.Now()
	}
	startT := e.group.Clock(0).Now()
	reqBefore, readBefore := e.src.Traffic()
	var hitsBefore uint64
	refresh := false
	if e.rc != nil {
		hitsBefore = e.rc.Hits()
		if e.rc.IsRefreshIteration(iter) {
			// Flush before compute: on a refresh iteration every active
			// row goes to the device (and gets re-pinned afterwards) on
			// both backends.
			e.rc.BeginRefresh()
			refresh = true
		}
	}
	e.ps.UpdateCentroidDists(e.cents)

	st, err := e.computePass(iter, refresh)
	if err != nil {
		return err
	}
	st.Iter = iter

	merged := kmeans.MergeTree(e.deltas)
	e.gsum.Merge(merged)
	next := e.gsum.Centroids(e.cents)
	if e.cfg.Kmeans.Spherical {
		matrix.NormalizeRows(next)
	}
	drift := e.ps.ComputeDrift(e.cents, next)
	if e.cfg.Kmeans.Prune != kmeans.PruneNone {
		e.ps.LoosenRows(0, e.n)
	}
	e.cents = next
	st.Drift = drift

	if !real {
		e.replay()
		ccCost := float64(e.k*(e.k-1)/2) * model.DistanceCost(e.d)
		end := e.group.Barrier()
		for w := 0; w < e.cfg.Kmeans.Threads; w++ {
			e.group.Clock(w).Advance(ccCost)
		}
		end += ccCost
		st.SimSeconds = end - startT
	}
	if refresh {
		if err := e.fillRowCache(); err != nil {
			return err
		}
	}

	req, read := e.src.Traffic()
	st.BytesWanted = req - reqBefore
	st.BytesRead = read - readBefore
	if e.rc != nil {
		st.RowCacheHits = e.rc.Hits() - hitsBefore
	}
	if real {
		st.SimSeconds = time.Since(t0).Seconds()
		e.wall += st.SimSeconds
		telIterSeconds.Observe(st.SimSeconds)
	}
	telIterations.Inc()
	telActiveRows.Add(uint64(st.ActiveRows))
	telBytesWanted.Add(st.BytesWanted)
	telBytesRead.Add(st.BytesRead)
	telRowCacheHits.Add(st.RowCacheHits)
	telDrift.Set(drift)

	e.perIter = append(e.perIter, st)
	e.iter++
	if iter > 0 && (st.RowsChanged == 0 || drift <= e.cfg.Kmeans.Tol) {
		e.converged = true
	}
	if e.cfg.CheckpointPath != "" && e.cfg.CheckpointEvery > 0 && e.iter%e.cfg.CheckpointEvery == 0 {
		if err := e.Checkpoint(e.cfg.CheckpointPath); err != nil {
			return fmt.Errorf("sem: checkpoint: %w", err)
		}
	}
	return nil
}

// computePass runs the real parallel assignment pass. Tasks are
// processed by their statically owning partition worker, in task
// order — FlashGraph's ownership model, and the property that makes
// every run bit-deterministic: each row's delta always accumulates in
// the same per-worker Accum, so the MergeTree float grouping never
// depends on goroutine scheduling and the simulated and file backends
// land on identical bits. Each worker fetches rows through its own
// cursor: free on the simulated backend (the matrix is resident),
// real page-cache reads on the file backend, where rows pinned by the
// row cache are served from memory and the remaining misses are
// prefetched ahead of the row loop so page fetches overlap compute.
// Each task records its active rows and row-cache misses for the
// deterministic accounting pass.
func (e *Engine) computePass(iter int, refresh bool) (kmeans.IterStats, error) {
	T := e.cfg.Kmeans.Threads
	real := e.src.Real()
	type out struct {
		ctr     kmeans.PruneCounters
		changed int
	}
	outs := make([]out, T)
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < T; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := e.cursor()
			o := &outs[w]
			delta := e.deltas[w]
			delta.Reset()
			for ti := range e.tasks {
				if e.tasks[ti].worker != w {
					continue
				}
				if firstErr.Load() != nil {
					return
				}
				task := &e.tasks[ti]
				task.active = task.active[:0]
				task.miss = task.miss[:0]
				if real {
					// Hint the task's row-cache misses to the prefetch
					// pool before computing, so their pages stream in
					// while earlier rows are processed.
					for i := task.lo; i < task.hi; i++ {
						if iter > 0 && !e.ps.NeedsRow(i) {
							continue
						}
						if e.rc != nil && !refresh && e.rc.Peek(int32(i)) {
							continue
						}
						task.miss = append(task.miss, int32(i))
					}
					e.src.Prefetch(task.miss)
					task.miss = task.miss[:0]
				}
				before := o.ctr
				changedBefore := o.changed
				for i := task.lo; i < task.hi; i++ {
					if iter > 0 && !e.ps.NeedsRow(i) {
						o.ctr.C1++
						continue
					}
					task.active = append(task.active, int32(i))
					var row []float64
					cached := false
					if e.rc != nil && !refresh {
						if vals, ok := e.rc.Get(int32(i)); ok {
							cached = true
							row = vals // nil on the simulated backend (data is resident)
						}
					}
					if !cached {
						task.miss = append(task.miss, int32(i))
					}
					if row == nil {
						var err error
						row, err = cur.Row(i)
						if err != nil {
							firstErr.CompareAndSwap(nil, fmt.Errorf("sem: read row %d: %w", i, err))
							return
						}
					}
					old := e.ps.Assign[i]
					if e.ps.AssignRow(i, row, e.cents, &o.ctr) {
						o.changed++
						if old >= 0 {
							delta.Remove(row, int(old))
						}
						delta.Add(row, int(e.ps.Assign[i]))
					}
				}
				task.dists = o.ctr.DistCalcs - before.DistCalcs
				task.changed = o.changed - changedBefore
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return kmeans.IterStats{}, err
	}

	var st kmeans.IterStats
	changed := 0
	for i := range outs {
		st.DistCalcs += outs[i].ctr.DistCalcs
		st.PrunedC1 += outs[i].ctr.C1
		st.PrunedC2 += outs[i].ctr.C2
		st.PrunedC3 += outs[i].ctr.C3
		changed += outs[i].changed
	}
	st.RowsChanged = changed
	st.ActiveRows = e.n - int(st.PrunedC1)
	return st, nil
}

// replay charges simulated time and I/O deterministically (simulated
// backend only): tasks run on their owning partition's worker; each
// task's row-cache misses go through SAFS (page cache → device array);
// compute overlaps the asynchronous I/O, so a task finishes at
// max(computeEnd, ioEnd).
func (e *Engine) replay() {
	model := e.cfg.Kmeans.Model
	// Process tasks in earliest-worker order so simulated I/O issue
	// times are monotone — a call-order FIFO on the device resources
	// would otherwise let an eager worker's late-clock request inflate
	// the queue seen by a fresh worker's time-zero request.
	T := e.cfg.Kmeans.Threads
	queues := make([][]*semTask, T)
	for ti := range e.tasks {
		t := &e.tasks[ti]
		queues[t.worker] = append(queues[t.worker], t)
	}
	remaining := 0
	for _, q := range queues {
		if len(q) > 0 {
			remaining++
		}
	}
	for remaining > 0 {
		w := -1
		for i := 0; i < T; i++ {
			if len(queues[i]) == 0 {
				continue
			}
			if w < 0 || e.group.Clock(i).Now() < e.group.Clock(w).Now() {
				w = i
			}
		}
		task := queues[w][0]
		queues[w] = queues[w][1:]
		if len(queues[w]) == 0 {
			remaining--
		}
		clock := e.group.Clock(w)
		ioEnd := e.src.ReadRows(clock.Now(), task.miss)
		clock.Advance(float64(task.dists)*model.DistanceCost(e.d) +
			float64(task.hi-task.lo)*model.RowOverhead +
			float64(task.changed)*float64(2*e.d)*model.FlopTime)
		clock.AdvanceTo(ioEnd) // overlap: end at the later of compute/IO
	}
}

// fillRowCache re-pins this refresh iteration's active rows, visiting
// tasks in index order so the pinned set is deterministic and
// identical across backends (partition caps cut the same prefix
// either way). On the file backend the cache stores the row data —
// refills read through the page cache untracked, since the simulated
// algorithm issues no extra requests for pinning.
func (e *Engine) fillRowCache() error {
	if e.rc == nil {
		return nil
	}
	var cur RowCursor
	if e.src.Real() {
		cur = e.untrackedCursor()
	}
	for ti := range e.tasks {
		for _, r := range e.tasks[ti].active {
			if !e.rc.Wants(r) {
				continue
			}
			if cur == nil {
				e.rc.Offer(r)
				continue
			}
			row, err := cur.Row(int(r))
			if err != nil {
				return fmt.Errorf("sem: row cache refill row %d: %w", r, err)
			}
			e.rc.OfferData(r, row)
		}
	}
	return nil
}

func (e *Engine) result() (*kmeans.Result, error) {
	res := &kmeans.Result{
		Centroids:  e.cents,
		Assign:     e.ps.Assign,
		Iters:      e.iter,
		Converged:  e.converged,
		SimSeconds: e.group.Max(),
		PerIter:    e.perIter,
	}
	if e.data != nil {
		res.SSE = kmeans.SSEOf(e.data, e.cents, e.ps.Assign)
	} else {
		sse, err := e.sseStream()
		if err != nil {
			return nil, err
		}
		res.SSE = sse
	}
	if e.src.Real() {
		res.SimSeconds = e.wall
	}
	telLastSSE.Set(res.SSE)
	res.Sizes = make([]int, e.k)
	for _, a := range e.ps.Assign {
		if a >= 0 {
			res.Sizes[a]++
		}
	}
	// SEM memory: O(n) state + per-thread centroids + caches — no nd
	// data term (Table 1's point).
	res.MemoryBytes = kmeans.StateBytes(e.n, e.d, e.k, e.cfg.Kmeans.Threads, e.cfg.Kmeans.Prune) +
		uint64(e.cfg.PageCacheBytes)
	if e.rc != nil {
		res.MemoryBytes += uint64(e.cfg.RowCacheBytes)
	}
	return res, nil
}

// sseStream computes the objective with one untracked pass over the
// backend, accumulating in the same order as kmeans.SSEOf.
func (e *Engine) sseStream() (float64, error) {
	cur := e.untrackedCursor()
	var sse float64
	for i := 0; i < e.n; i++ {
		row, err := cur.Row(i)
		if err != nil {
			return 0, fmt.Errorf("sem: sse scan row %d: %w", i, err)
		}
		sse += matrix.SqDist(row, e.cents.Row(int(e.ps.Assign[i])))
	}
	return sse, nil
}

// Iter returns the next iteration index (how many have completed).
func (e *Engine) Iter() int { return e.iter }

// SAFS exposes the simulated I/O stack for inspection in tests and
// benches (nil on the file backend).
func (e *Engine) SAFS() *ssd.SAFS { return e.safs }

// Source exposes the storage backend.
func (e *Engine) Source() RowSource { return e.src }

// RC exposes the row cache (nil when disabled).
func (e *Engine) RC() *RowCache { return e.rc }
