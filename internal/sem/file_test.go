package sem

import (
	"path/filepath"
	"testing"

	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/store"
)

func writeStore(t *testing.T, data *matrix.Dense, elem int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.knor")
	if err := store.WriteDense(data, path, elem); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFileBackendParity is the backend-parity acceptance test: the
// simulated-array engine and the real file engine must produce
// bit-identical centroids and assignments, the same iteration count,
// and matching per-iteration BytesWanted and row-cache hits on the
// same dataset, across init methods, pruning modes, row-cache on/off,
// and the spherical variant.
func TestFileBackendParity(t *testing.T) {
	data := semData(2500, 16, 6, 81)
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"forgy-mti-rc", func(c *Config) {}},
		{"forgy-mti-norc", func(c *Config) { c.RowCacheBytes = 0 }},
		{"kmeanspp-noprune", func(c *Config) {
			c.Kmeans.Init = kmeans.InitKMeansPP
			c.Kmeans.Prune = kmeans.PruneNone
		}},
		{"yinyang", func(c *Config) { c.Kmeans.Prune = kmeans.PruneYinyang }},
		{"spherical", func(c *Config) { c.Kmeans.Spherical = true }},
		{"prefetch", func(c *Config) { c.PrefetchWorkers = 4 }},
	}
	path := writeStore(t, data, 8)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := semCfg(6, 4)
			cfg.PageCacheBytes = 1 << 16
			v.mut(&cfg)
			sim, err := Run(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			file, err := RunFile(path, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sim.Iters != file.Iters {
				t.Fatalf("iters: sim %d vs file %d", sim.Iters, file.Iters)
			}
			if !sim.Centroids.Equal(file.Centroids, 0) {
				t.Fatal("centroids not bit-identical across backends")
			}
			for i := range sim.Assign {
				if sim.Assign[i] != file.Assign[i] {
					t.Fatalf("row %d assigned differently", i)
				}
			}
			if sim.SSE != file.SSE {
				t.Fatalf("SSE: sim %v vs file %v", sim.SSE, file.SSE)
			}
			var fileRead uint64
			for it := range sim.PerIter {
				s, f := sim.PerIter[it], file.PerIter[it]
				if s.BytesWanted != f.BytesWanted {
					t.Fatalf("iter %d: BytesWanted sim %d vs file %d", it, s.BytesWanted, f.BytesWanted)
				}
				if s.RowCacheHits != f.RowCacheHits {
					t.Fatalf("iter %d: RowCacheHits sim %d vs file %d", it, s.RowCacheHits, f.RowCacheHits)
				}
				fileRead += f.BytesRead
			}
			if fileRead == 0 {
				t.Fatal("file backend recorded no device reads")
			}
		})
	}
}

// TestFileBackendReadAtLeastRequested mirrors the simulated-stack
// fragmentation invariant on real I/O: with a page cache too small to
// absorb re-reads, whole-page device reads must meet or exceed the
// bytes the algorithm asked for, and both counters must be nonzero.
func TestFileBackendReadAtLeastRequested(t *testing.T) {
	data := semData(2000, 8, 5, 82)
	path := writeStore(t, data, 8)
	cfg := semCfg(5, 2)
	cfg.RowCacheBytes = 0
	cfg.PageCacheBytes = 4096 // one page
	res, err := RunFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var req, read uint64
	for _, st := range res.PerIter {
		req += st.BytesWanted
		read += st.BytesRead
	}
	if req == 0 || read == 0 {
		t.Fatalf("no traffic recorded: requested %d read %d", req, read)
	}
	if read < req {
		t.Fatalf("read %d < requested %d with a one-page cache", read, req)
	}
}

// TestFileBackendNeverMaterializes is the memory-bound acceptance
// test: on a dataset much larger than the caches, resident row data
// (page-cache high-water mark + pinned row-cache rows) stays bounded
// by the configured budgets, and the engine holds no n×d matrix.
func TestFileBackendNeverMaterializes(t *testing.T) {
	data := semData(20000, 16, 6, 83) // payload 2.56 MB
	path := writeStore(t, data, 8)
	f, err := store.Open(path, store.Options{CacheBytes: 1 << 16, PrefetchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg := semCfg(6, 4)
	cfg.PageCacheBytes = 1 << 16 // engine-side accounting only; store already sized
	cfg.RowCacheBytes = 1 << 16
	eng, err := NewFromStore(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.data != nil {
		t.Fatal("file engine materialised the matrix")
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations ran")
	}
	if peak, capPages := f.CachePeakPages(), f.CacheCapPages(); peak > capPages {
		t.Fatalf("page cache peak %d pages exceeds capacity %d", peak, capPages)
	}
	if capBytes := f.CacheCapPages() * f.PageSize(); capBytes >= 1<<18 {
		t.Fatalf("cache capacity %d not meaningfully below the %d-byte payload", capBytes, 20000*16*8)
	}
	rc := eng.RC()
	if rc == nil {
		t.Fatal("row cache disabled")
	}
	if rc.Len() > rc.CapacityRows() {
		t.Fatalf("row cache %d rows over capacity %d", rc.Len(), rc.CapacityRows())
	}
	if got, want := rc.MemoryBytes(16*8), uint64(cfg.RowCacheBytes); got > want {
		t.Fatalf("row cache pins %d bytes, budget %d", got, want)
	}
}

// TestFileCrashRecovery checkpoints a file-backed run mid-flight,
// "crashes", restores into a fresh engine over the same file, and must
// land bit-identically with an uninterrupted file run (and therefore,
// by parity, with the simulated one).
func TestFileCrashRecovery(t *testing.T) {
	data := semData(1200, 8, 5, 84)
	path := writeStore(t, data, 8)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.bin")
	cfg := semCfg(5, 2)

	ref, err := RunFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}

	e1, err := NewFromFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	e1.Close() // crash: the process and its page cache are gone

	e2, err := NewFromFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.RestoreEngine(ckpt); err != nil {
		t.Fatal(err)
	}
	if e2.Iter() != 4 {
		t.Fatalf("restored iter = %d", e2.Iter())
	}
	res, err := e2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Centroids.Equal(res.Centroids, 0) {
		t.Fatal("recovered file run diverged from uninterrupted run")
	}
	for i := range ref.Assign {
		if ref.Assign[i] != res.Assign[i] {
			t.Fatalf("row %d differs after recovery", i)
		}
	}
}

// TestFileBackendFloat32Storage: an elem=4 store file rounds each
// value to float32; the engine must then behave exactly like the
// simulated engine running on the rounded matrix.
func TestFileBackendFloat32Storage(t *testing.T) {
	data := semData(1500, 8, 5, 85)
	path := writeStore(t, data, 4)
	rounded := matrix.Convert[float64](matrix.Convert[float32](data))
	cfg := semCfg(5, 2)
	sim, err := Run(rounded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	file, err := RunFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Iters != file.Iters || !sim.Centroids.Equal(file.Centroids, 0) {
		t.Fatal("float32-storage run does not match simulated run on rounded data")
	}
}

// TestNewFromFileRejectsLegacyFormat: pointing the file backend at a
// legacy whole-matrix file must fail with the store's descriptive
// error, not garbage reads.
func TestNewFromFileRejectsLegacyFormat(t *testing.T) {
	data := semData(100, 4, 3, 86)
	path := filepath.Join(t.TempDir(), "legacy.knor")
	if err := data.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromFile(path, semCfg(3, 1)); err == nil {
		t.Fatal("legacy matrix file accepted by file backend")
	}
}
