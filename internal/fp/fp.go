// Package fp holds the element-type constraint shared by the numeric
// layers (blas → matrix → kmeans → serve). It is a leaf package so that
// matrix can name the constraint while the blas tests import matrix;
// the canonical spelling for callers is the blas.Float alias.
package fp

// Float constrains the element type of every numeric kernel: float64 is
// the oracle precision, float32 the halved-bandwidth precision.
type Float interface{ float32 | float64 }

// ElemBytes returns the in-memory size of one element of T.
func ElemBytes[T Float]() int {
	var z T
	if _, ok := any(z).(float32); ok {
		return 4
	}
	return 8
}
