// Benchmarks mirroring every table and figure of the paper's
// evaluation. Wall-clock numbers (ns/op) measure the real Go
// implementation; the custom "simms/iter" metric reports the
// deterministic simulated time the figures are built from. The
// cmd/knorbench harness prints the full sweeps; these testing.B
// benchmarks pin one representative configuration per artifact so
// `go test -bench=. -benchmem` regenerates the headline comparisons.
package knor_test

import (
	"testing"
	"time"

	"knor"
	"knor/internal/dist"
	"knor/internal/frameworks"
	"knor/internal/kmeans"
	"knor/internal/sem"
	"knor/internal/workload"
)

func benchData(n, d int) *knor.Matrix {
	return knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: n, D: d,
		Clusters: 10, Spread: 0.05, Seed: int64(d), Grouped: true,
	})
}

func reportSim(b *testing.B, res *knor.Result) {
	b.Helper()
	b.ReportMetric(res.SimSeconds/float64(res.Iters)*1e3, "simms/iter")
}

// --- Table 3: serial implementation styles (real wall time) -----------

func benchSerialStyle(b *testing.B, run func(*knor.Matrix, knor.Config) (*knor.Result, error)) {
	data := benchData(20000, 8)
	cfg := knor.Config{K: 10, MaxIters: 3, Tol: -1, Init: knor.InitForgy, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3KnoriSerial(b *testing.B) {
	benchSerialStyle(b, kmeans.RunSerial)
}

func BenchmarkTable3GEMM(b *testing.B) {
	benchSerialStyle(b, func(d *knor.Matrix, c knor.Config) (*knor.Result, error) {
		return kmeans.RunGEMM(d, c, 4096, 1)
	})
}

func BenchmarkTable3IterativeCopy(b *testing.B) {
	benchSerialStyle(b, kmeans.RunIterativeCopying)
}

func BenchmarkTable3IterativeIndirect(b *testing.B) {
	benchSerialStyle(b, kmeans.RunIterativeIndirect)
}

// --- Figure 4: NUMA-aware vs oblivious --------------------------------

func benchFig4(b *testing.B, oblivious bool) {
	data := benchData(66000, 8)
	cfg := knor.Config{
		K: 10, MaxIters: 4, Tol: -1, Init: knor.InitForgy, Seed: 1,
		Threads: 16, TaskSize: 1024, Topo: knor.DefaultTopology(),
		Sched: knor.SchedNUMAAware,
	}
	if oblivious {
		cfg.NUMAOblivious = true
		cfg.Placement = knor.PlaceSingleBank
		cfg.Sched = knor.SchedFIFO
	}
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := knor.Run(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
}

func BenchmarkFig4NUMAAware(b *testing.B)     { benchFig4(b, false) }
func BenchmarkFig4NUMAOblivious(b *testing.B) { benchFig4(b, true) }

// --- Figure 5: schedulers under pruning skew ---------------------------

func benchFig5(b *testing.B, policy knor.Config) {
	data := benchData(66000, 8)
	cfg := knor.Config{
		K: 50, MaxIters: 6, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
		Threads: 16, TaskSize: 512, Topo: knor.DefaultTopology(),
		Prune: knor.PruneMTI, Sched: policy.Sched,
	}
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := knor.Run(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
}

func BenchmarkFig5SchedNUMAAware(b *testing.B) {
	benchFig5(b, knor.Config{Sched: knor.SchedNUMAAware})
}

func BenchmarkFig5SchedFIFO(b *testing.B) {
	benchFig5(b, knor.Config{Sched: knor.SchedFIFO})
}

func BenchmarkFig5SchedStatic(b *testing.B) {
	benchFig5(b, knor.Config{Sched: knor.SchedStatic})
}

// --- Figures 6/7: knors I/O --------------------------------------------

func benchKnors(b *testing.B, prune bool, rowCache int) {
	data := benchData(40000, 32)
	cfg := knor.SEMConfig{
		Kmeans: knor.Config{
			K: 10, MaxIters: 12, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
			Threads: 8, TaskSize: 512,
		},
		Devices:        24,
		PageCacheBytes: 1 << 20,
		RowCacheBytes:  rowCache,
	}
	if prune {
		cfg.Kmeans.Prune = knor.PruneMTI
	}
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := knor.RunSEM(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
	var read uint64
	for _, st := range last.PerIter {
		read += st.BytesRead
	}
	b.ReportMetric(float64(read)/float64(last.Iters)/1e6, "MBread/iter")
}

func BenchmarkFig6Knors(b *testing.B)            { benchKnors(b, true, 1<<23) }
func BenchmarkFig6KnorsNoRC(b *testing.B)        { benchKnors(b, true, 0) }
func BenchmarkFig6KnorsNoPruneNoRC(b *testing.B) { benchKnors(b, false, 0) }

// --- Figure 8: MTI on/off ----------------------------------------------

func benchFig8(b *testing.B, prune knor.Config) {
	data := benchData(66000, 8)
	cfg := knor.Config{
		K: 20, MaxIters: 8, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
		Threads: 16, TaskSize: 512, Topo: knor.DefaultTopology(),
		Prune: prune.Prune, Sched: knor.SchedNUMAAware,
	}
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := knor.Run(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
}

func BenchmarkFig8KnoriMTI(b *testing.B)  { benchFig8(b, knor.Config{Prune: knor.PruneMTI}) }
func BenchmarkFig8KnoriNone(b *testing.B) { benchFig8(b, knor.Config{Prune: knor.PruneNone}) }
func BenchmarkFig8KnoriTI(b *testing.B)   { benchFig8(b, knor.Config{Prune: knor.PruneTI}) }

// --- Figure 9: frameworks ----------------------------------------------

func benchFramework(b *testing.B, sys frameworks.System) {
	data := benchData(40000, 8)
	cfg := knor.Config{
		K: 10, MaxIters: 5, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
		Threads: 16, TaskSize: 512, Topo: knor.DefaultTopology(),
	}
	// Scale the fixed driver dispatch with the ~1/1650 dataset scale,
	// as the knorbench harness does (EXPERIMENTS.md).
	p := frameworks.ProfileOf(sys)
	p.TaskDispatch /= 1650
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := frameworks.RunWithProfile(data, cfg, sys, p)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
}

func BenchmarkFig9MLlib(b *testing.B) { benchFramework(b, frameworks.MLlib) }
func BenchmarkFig9H2O(b *testing.B)   { benchFramework(b, frameworks.H2O) }
func BenchmarkFig9Turi(b *testing.B)  { benchFramework(b, frameworks.Turi) }

// --- Figure 10: scalability dataset (uniform random) --------------------

func BenchmarkFig10KnoriUniform(b *testing.B) {
	data := knor.Generate(knor.Spec{Kind: knor.UniformMultivariate, N: 100000, D: 16, Seed: 856})
	cfg := knor.Config{
		K: 10, MaxIters: 4, Tol: -1, Init: knor.InitForgy, Seed: 1,
		Threads: 16, TaskSize: 1024, Topo: knor.DefaultTopology(),
		Prune: knor.PruneMTI, Sched: knor.SchedNUMAAware,
	}
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := knor.Run(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
}

// --- Figures 11-13: distributed -----------------------------------------

func benchDist(b *testing.B, mode dist.Mode) {
	data := benchData(66000, 32)
	cfg := knor.DistConfig{
		Machines: 4,
		Mode:     mode,
		Kmeans: knor.Config{
			K: 10, MaxIters: 4, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
			Threads: 8, TaskSize: 512, Topo: knor.Topology{Nodes: 2, CoresPerNode: 9},
			Prune: knor.PruneMTI, Sched: knor.SchedNUMAAware,
		},
	}
	if mode == knor.ModeMLlib {
		cfg.Kmeans.Prune = knor.PruneNone
	}
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := knor.RunDistributed(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
}

func BenchmarkFig12Knord(b *testing.B) { benchDist(b, knor.ModeKnord) }
func BenchmarkFig12MPI(b *testing.B)   { benchDist(b, knor.ModeMPI) }
func BenchmarkFig12MLlib(b *testing.B) { benchDist(b, knor.ModeMLlib) }

func BenchmarkFig13KnorsSingleNode(b *testing.B) {
	data := benchData(66000, 32)
	cfg := knor.SEMConfig{
		Kmeans: knor.Config{
			K: 10, MaxIters: 4, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
			Threads: 16, TaskSize: 512, Prune: knor.PruneMTI,
		},
		Devices: 8, PageCacheBytes: 1 << 22, RowCacheBytes: 1 << 23,
	}
	var last *knor.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := knor.RunSEM(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSim(b, last)
}

// --- Ablations: wall-clock-honest algorithmic comparisons ---------------

// ||Lloyd's per-thread accumulation vs the naive shared-and-locked
// phase II — real contention, real wall time (the paper's core claim).
func BenchmarkAblationParallelLloyds(b *testing.B) {
	data := benchData(100000, 8)
	cfg := knor.Config{
		K: 10, MaxIters: 3, Tol: -1, Init: knor.InitForgy, Seed: 1,
		Threads: 8, TaskSize: 1024,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knor.Run(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNaiveLocking(b *testing.B) {
	data := benchData(100000, 8)
	cfg := knor.Config{
		K: 10, MaxIters: 3, Tol: -1, Init: knor.InitForgy, Seed: 1,
		Threads: 8, TaskSize: 1024,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.RunNaiveParallel(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// MTI wall-clock effect (not just simulated): fewer distance kernels.
func BenchmarkAblationWallMTI(b *testing.B) {
	data := benchData(100000, 8)
	cfg := knor.Config{
		K: 20, MaxIters: 6, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
		Threads: 8, TaskSize: 1024, Prune: knor.PruneMTI,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knor.Run(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWallNoPrune(b *testing.B) {
	data := benchData(100000, 8)
	cfg := knor.Config{
		K: 20, MaxIters: 6, Tol: -1, Init: knor.InitKMeansPP, Seed: 1,
		Threads: 8, TaskSize: 1024,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knor.Run(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Dataset generation throughput, for sizing experiment scripts.
func BenchmarkWorkloadGenerate(b *testing.B) {
	spec := workload.Spec{Kind: workload.NaturalClusters, N: 50000, D: 16, Clusters: 10, Spread: 0.05, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = workload.Generate(spec)
	}
}

// Checkpoint write/restore cost.
func BenchmarkSEMCheckpoint(b *testing.B) {
	data := benchData(50000, 16)
	cfg := knor.SEMConfig{
		Kmeans:  knor.Config{K: 10, MaxIters: 5, Init: knor.InitForgy, Seed: 1, Threads: 4, TaskSize: 1024, Prune: knor.PruneMTI},
		Devices: 8, PageCacheBytes: 1 << 20, RowCacheBytes: 1 << 20,
	}
	eng, err := sem.New(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/ckpt.bin"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Checkpoint(path); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving: batched /assign throughput --------------------------------

// BenchmarkServeAssign drives concurrent clients through the serving
// layer's batched GEMM assignment path against a k=100, d=16 model
// (the EXPERIMENTS.md serving configuration, in-process). ns/op is the
// per-request latency under load; req/s is reported as a metric.
func BenchmarkServeAssign(b *testing.B) {
	spec := knor.Spec{Kind: knor.NaturalClusters, N: 100000, D: 16, Clusters: 100, Spread: 0.05, Seed: 1}
	data := knor.Generate(spec)
	res, err := knor.RunMiniBatch(data, knor.Config{K: 100, MaxIters: 30, Seed: 1, Init: knor.InitKMeansPP}, 1024)
	if err != nil {
		b.Fatal(err)
	}
	reg := knor.NewRegistry(4)
	if _, err := knor.NewStreamEngine("bench", res.Centroids, reg); err != nil {
		b.Fatal(err)
	}
	bat := knor.NewBatcher(reg, knor.BatcherOptions{Threads: 2})
	defer bat.Close()
	q := knor.NewQueryStream(spec, 7)
	const pool = 64
	batches := make([]*knor.Matrix, pool)
	for i := range batches {
		batches[i] = q.Next(4)
	}
	b.SetParallelism(16)
	b.ResetTimer()
	start := nowSeconds()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := bat.AssignBatch("bench", batches[i%pool]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	if dt := nowSeconds() - start; dt > 0 {
		b.ReportMetric(float64(b.N)/dt, "req/s")
	}
}

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
