package knor_test

import (
	"fmt"

	"knor"
)

// ExampleRunSerial clusters a tiny dataset with the reference serial
// engine (deterministic output).
func ExampleRunSerial() {
	data, _ := knor.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{5, 5}, {5.1, 5}, {5, 5.1},
	})
	res, err := knor.RunSerial(data, knor.Config{K: 2, Init: knor.InitForgy, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("cluster of row 0 == row 1:", res.Assign[0] == res.Assign[1])
	fmt.Println("cluster of row 0 == row 3:", res.Assign[0] == res.Assign[3])
	// Output:
	// converged: true
	// cluster of row 0 == row 1: true
	// cluster of row 0 == row 3: false
}

// ExampleRun shows the NUMA-aware in-memory module (knori) with MTI
// pruning on a generated dataset.
func ExampleRun() {
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: 3000, D: 8, Clusters: 5, Spread: 0.04, Seed: 9,
	})
	res, err := knor.Run(data, knor.Config{
		K: 5, Init: knor.InitKMeansPP, Seed: 2,
		Prune: knor.PruneMTI, Threads: 4,
		Topo: knor.DefaultTopology(), Sched: knor.SchedNUMAAware,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.Centroids.Rows())
	fmt.Println("converged:", res.Converged)
	fmt.Println("all rows assigned:", len(res.Assign) == 3000)
	// Output:
	// clusters: 5
	// converged: true
	// all rows assigned: true
}

// ExampleRunSEM runs the semi-external-memory module (knors) and shows
// that clause-1 pruning spares I/O after the first iteration.
func ExampleRunSEM() {
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: 2000, D: 8, Clusters: 4, Spread: 0.04, Seed: 5,
	})
	res, err := knor.RunSEM(data, knor.SEMConfig{
		Kmeans: knor.Config{
			K: 4, Init: knor.InitKMeansPP, Seed: 1, Threads: 2, Prune: knor.PruneMTI,
		},
		Devices: 8, RowCacheBytes: 1 << 20,
	})
	if err != nil {
		panic(err)
	}
	first := res.PerIter[0].BytesWanted
	last := res.PerIter[len(res.PerIter)-1].BytesWanted
	fmt.Println("first iteration requests the full data:", first == 2000*8*8)
	fmt.Println("later iterations request less:", last < first)
	// Output:
	// first iteration requests the full data: true
	// later iterations request less: true
}

// ExampleRunDistributed runs knord across simulated machines; the
// result matches the single-machine engine.
func ExampleRunDistributed() {
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: 2000, D: 8, Clusters: 4, Spread: 0.04, Seed: 5,
	})
	cfg := knor.Config{K: 4, Init: knor.InitForgy, Seed: 7, Threads: 2}
	local, _ := knor.Run(data, cfg)
	distr, err := knor.RunDistributed(data, knor.DistConfig{
		Machines: 4, Mode: knor.ModeKnord, Kmeans: cfg,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("same iterations:", local.Iters == distr.Iters)
	fmt.Println("same centroids:", local.Centroids.Equal(distr.Centroids, 1e-9))
	// Output:
	// same iterations: true
	// same centroids: true
}

// ExampleStreamEngine shows the serving layer's streaming update path:
// a model seeded by a short batch run is published into a registry,
// improved by folding the dataset through in mini-batches, re-published
// copy-on-write, and checkpointed/resumed exactly.
func ExampleStreamEngine() {
	data := knor.Generate(knor.Spec{
		Kind: knor.NaturalClusters, N: 4000, D: 8, Clusters: 5, Spread: 0.04, Seed: 3,
	})
	// A deliberately rough seed model: one Lloyd's iteration.
	seed, err := knor.RunSerial(data, knor.Config{K: 5, Init: knor.InitKMeansPP, Seed: 3, MaxIters: 1})
	if err != nil {
		panic(err)
	}
	reg := knor.NewRegistry(4)
	eng, err := knor.NewStreamEngine("demo", seed.Centroids, reg)
	if err != nil {
		panic(err)
	}
	// Stream the dataset through the updater in batches of 200.
	for lo := 0; lo < data.Rows(); lo += 200 {
		batch := &knor.Matrix{RowsN: 200, ColsN: 8, Data: data.Data[lo*8 : (lo+200)*8]}
		if _, err := eng.Observe(batch); err != nil {
			panic(err)
		}
	}
	snap, err := eng.Publish()
	if err != nil {
		panic(err)
	}
	cp := eng.Checkpoint()
	resumed, err := knor.ResumeStreamEngine(cp, reg)
	if err != nil {
		panic(err)
	}
	fmt.Println("rows folded:", eng.Seen())
	fmt.Println("published version:", snap.Version)
	fmt.Println("stream improved the seed:", knor.SSE(data, snap.Centroids) < knor.SSE(data, seed.Centroids))
	fmt.Println("resume is exact:", resumed.Centroids().Equal(eng.Centroids(), 0))
	// Output:
	// rows folded: 4000
	// published version: 2
	// stream improved the seed: true
	// resume is exact: true
}

// ExampleAgglomerateCentroids cuts a Ward hierarchy built over k-means
// centroids.
func ExampleAgglomerateCentroids() {
	centroids, _ := knor.FromRows([][]float64{
		{0, 0}, {0.2, 0}, {8, 8}, {8.2, 8},
	})
	_, flat, err := knor.AgglomerateCentroids(centroids, []int{50, 50, 50, 50}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("pairs merged:", flat[0] == flat[1] && flat[2] == flat[3] && flat[0] != flat[2])
	// Output:
	// pairs merged: true
}
