// Package knor is a Go reproduction of "knor: A NUMA-Optimized
// In-Memory, Distributed and Semi-External-Memory k-means Library"
// (Mhembere et al., HPDC 2017).
//
// The library exposes the paper's three modules through one facade:
//
//   - Run — knori, the NUMA-aware in-memory ||Lloyd's engine with
//     minimal-triangle-inequality (MTI) pruning;
//   - RunSEM — knors, semi-external memory: O(n) state in RAM, row data
//     streamed from a simulated SSD array through a SAFS-like layer with
//     a partitioned lazily-updated row cache;
//   - RunDistributed — knord, decentralised per-machine drivers merged
//     with MPI-style allreduce collectives.
//
// On top of the batch trainers sits an online serving layer (see
// Registry, Batcher and StreamEngine, and the knorserve command):
// models published copy-on-write, queries answered through batched GEMM
// distance computations, and stream updaters that keep folding new
// observations into a model while it serves. NewShardedAssigner scales
// that layer out: a model's centroids sharded across simulated
// machines (knord's row-sharding applied to the online path), queries
// fanned out and merged by a min-allreduce, bit-identical to the
// single-node assigner.
//
// Hardware-gated effects (thread pinning, NUMA banks, SSD arrays,
// cluster NICs) run through a deterministic simulated-cost layer — Go
// offers no portable NUMA control — while all algorithmic behaviour
// (assignments, pruning, cache hits, byte counts) is computed for real.
// Every engine is bit-compatible with the serial Lloyd's oracle; see
// DESIGN.md for the substitution table and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Quickstart:
//
//	data := knor.Generate(knor.Spec{Kind: knor.NaturalClusters, N: 10000, D: 8, Clusters: 10, Seed: 1})
//	res, err := knor.Run(data, knor.Config{K: 10, Prune: knor.PruneMTI, Threads: 8})
package knor

import (
	"knor/internal/dist"
	"knor/internal/kmeans"
	"knor/internal/matrix"
	"knor/internal/metrics"
	"knor/internal/numa"
	"knor/internal/numaml"
	"knor/internal/sched"
	"knor/internal/sem"
	"knor/internal/serve"
	"knor/internal/shardserve"
	"knor/internal/simclock"
	"knor/internal/store"
	"knor/internal/topology"
	"knor/internal/workload"
)

// Core types, re-exported so callers need only this package.
type (
	// Matrix is a dense row-major float64 matrix.
	Matrix = matrix.Dense
	// Matrix32 is the float32 instantiation of the same matrix type,
	// for callers driving the generic engines directly.
	Matrix32 = matrix.Mat[float32]
	// Precision selects the numeric core's element type at the API
	// edges (RunPrecision, NewAssigner, the -precision CLI flags).
	Precision = kmeans.Precision
	// Config controls an in-memory (knori) run.
	Config = kmeans.Config
	// Result is the outcome of any run.
	Result = kmeans.Result
	// IterStats records one iteration's behaviour.
	IterStats = kmeans.IterStats
	// SEMConfig controls a semi-external-memory (knors) run.
	SEMConfig = sem.Config
	// SEMEngine is a stepwise knors driver with checkpoint support.
	SEMEngine = sem.Engine
	// DistConfig controls a distributed (knord) run.
	DistConfig = dist.Config
	// Spec describes a synthetic dataset.
	Spec = workload.Spec
	// Topology describes the simulated NUMA machine.
	Topology = numa.Topology
	// CostModel holds the simulation's calibration constants.
	CostModel = simclock.CostModel
)

// Numeric precisions. Precision64 runs the oracle engines; Precision32
// halves memory traffic on every kernel and answers within the
// relative-error bounds documented in EXPERIMENTS.md.
const (
	Precision64 = kmeans.Precision64
	Precision32 = kmeans.Precision32
)

// Pruning modes.
const (
	PruneNone    = kmeans.PruneNone
	PruneMTI     = kmeans.PruneMTI
	PruneTI      = kmeans.PruneTI
	PruneYinyang = kmeans.PruneYinyang
)

// Initialisation methods.
const (
	InitForgy           = kmeans.InitForgy
	InitRandomPartition = kmeans.InitRandomPartition
	InitKMeansPP        = kmeans.InitKMeansPP
	InitGiven           = kmeans.InitGiven
)

// Scheduler policies (Figure 5).
const (
	SchedStatic    = sched.Static
	SchedFIFO      = sched.FIFO
	SchedNUMAAware = sched.NUMAAware
)

// Placement policies for the simulated NUMA machine.
const (
	PlacePartitioned = numa.PlacePartitioned
	PlaceSingleBank  = numa.PlaceSingleBank
	PlaceInterleaved = numa.PlaceInterleaved
	PlaceRandom      = numa.PlaceRandom
)

// Dataset generator kinds.
const (
	NaturalClusters     = workload.NaturalClusters
	UniformMultivariate = workload.UniformMultivariate
	UniformUnivariate   = workload.UniformUnivariate
)

// Distributed modes (Section 8.9).
const (
	ModeKnord = dist.ModeKnord
	ModeMPI   = dist.ModeMPI
	ModeMLlib = dist.ModeMLlib
)

// Run executes knori: NUMA-aware in-memory ||Lloyd's.
func Run(data *Matrix, cfg Config) (*Result, error) {
	return kmeans.Run(data, cfg)
}

// RunPrecision executes knori at the requested precision: Precision64
// is exactly Run; Precision32 converts the data once and runs the
// float32 engine. Results are always reported in float64.
func RunPrecision(data *Matrix, cfg Config, p Precision) (*Result, error) {
	return kmeans.RunPrecision(data, cfg, p)
}

// Run32 executes knori on float32 data directly (no conversion), for
// callers that keep their dataset in single precision end to end.
func Run32(data *Matrix32, cfg Config) (*Result, error) {
	return kmeans.RunOf(data, cfg)
}

// ConvertMatrix32 copies a float64 matrix to float32 (rounding each
// element to nearest).
func ConvertMatrix32(m *Matrix) *Matrix32 { return matrix.Convert[float32](m) }

// RunSerial executes the single-threaded reference Lloyd's (with
// optional pruning), the oracle every optimised engine is tested
// against.
func RunSerial(data *Matrix, cfg Config) (*Result, error) {
	return kmeans.RunSerial(data, cfg)
}

// RunSEM executes knors: semi-external-memory k-means over the
// simulated SSD array.
func RunSEM(data *Matrix, cfg SEMConfig) (*Result, error) {
	return sem.Run(data, cfg)
}

// NewSEMEngine builds a stepwise knors engine (checkpoint/recovery).
func NewSEMEngine(data *Matrix, cfg SEMConfig) (*SEMEngine, error) {
	return sem.New(data, cfg)
}

// --- real I/O backend (internal/store) ---------------------------------

type (
	// StoreFile is an opened on-disk matrix in the knor store format,
	// read through a page cache with request merging and prefetch.
	StoreFile = store.File
	// StoreOptions tune an opened store file's I/O stack.
	StoreOptions = store.Options
	// StoreWriter streams rows into a new store file.
	StoreWriter = store.Writer
)

// RunSEMFile executes knors streaming row data from a store file on
// real hardware: the matrix is never materialised in memory — resident
// row data is bounded by the page- and row-cache budgets — and the
// BytesWanted/BytesRead counters follow the simulator's semantics.
func RunSEMFile(path string, cfg SEMConfig) (*Result, error) {
	return sem.RunFile(path, cfg)
}

// NewSEMEngineFromFile builds a stepwise knors engine over a store
// file; the engine owns the file and Close releases it.
func NewSEMEngineFromFile(path string, cfg SEMConfig) (*SEMEngine, error) {
	return sem.NewFromFile(path, cfg)
}

// OpenStore opens a store-format matrix for streaming reads.
func OpenStore(path string, opts StoreOptions) (*StoreFile, error) {
	return store.Open(path, opts)
}

// CreateStore starts writing a store file of n rows by d columns with
// the given element width (4 or 8 bytes).
func CreateStore(path string, n, d, elemBytes int) (*StoreWriter, error) {
	return store.Create(path, n, d, elemBytes)
}

// SaveMatrixStore writes a whole matrix as a store file.
func SaveMatrixStore(m *Matrix, path string, elemBytes int) error {
	return store.WriteDense(m, path, elemBytes)
}

// LoadMatrixAny reads a matrix from either on-disk format, sniffing
// the magic: store files (kmeansgen -format knor) and legacy
// whole-matrix files both load fully into memory.
func LoadMatrixAny(path string) (*Matrix, error) {
	isStore, err := store.SniffStore(path)
	if err != nil {
		return nil, err
	}
	if isStore {
		return store.ReadDense(path)
	}
	return matrix.LoadFile(path)
}

// RunDistributed executes knord (or the MPI/MLlib comparison modes)
// over the simulated cluster.
func RunDistributed(data *Matrix, cfg DistConfig) (*Result, error) {
	return dist.Run(data, cfg)
}

// RunMiniBatch executes the mini-batch approximation (extension).
func RunMiniBatch(data *Matrix, cfg Config, batch int) (*Result, error) {
	return kmeans.RunMiniBatch(data, cfg, batch)
}

// RunSemiSupervised runs k-means with semi-supervised k-means++ seeding
// (labels[i] >= 0 pins that row's class seed; -1 means unlabelled) —
// one of the paper's future-work variants (§9).
func RunSemiSupervised(data *Matrix, labels []int32, cfg Config) (*Result, error) {
	return kmeans.RunSemiSupervised(data, labels, cfg)
}

// Dendrogram is the merge history of an agglomerative run.
type Dendrogram = kmeans.Dendrogram

// AgglomerateCentroids builds a Ward-linkage hierarchy over a k-means
// result's centroids (two-stage clustering; future work §9). It returns
// the dendrogram and a flat cut into `cut` clusters.
func AgglomerateCentroids(centroids *Matrix, sizes []int, cut int) (*Dendrogram, []int, error) {
	return kmeans.AgglomerateCentroids(centroids, sizes, cut)
}

// --- generalised NUMA-ML framework (paper §9 future work) -------------

type (
	// MLKernel is a row-streaming iterative algorithm runnable on the
	// NUMA-aware driver (the paper's promised generalised framework).
	MLKernel = numaml.Kernel
	// MLConfig configures the generalised driver.
	MLConfig = numaml.Config
	// MLStats summarises a driver run.
	MLStats = numaml.Stats
	// GMM is a diagonal-covariance Gaussian mixture fitted by EM.
	GMM = numaml.GMM
	// KNN answers k-nearest-neighbour queries by NUMA-parallel scan.
	KNN = numaml.KNN
	// Neighbor is one kNN result.
	Neighbor = numaml.Neighbor
)

// RunKernel streams data through an MLKernel on the NUMA-aware driver.
func RunKernel(data *Matrix, k MLKernel, cfg MLConfig) (*MLStats, error) {
	return numaml.Run(data, k, cfg)
}

// NewGMM initialises a Gaussian mixture from seed centroids.
func NewGMM(seeds *Matrix, tol float64) *GMM { return numaml.NewGMM(seeds, tol) }

// NewKNN prepares a k-nearest-neighbour query batch.
func NewKNN(queries *Matrix, k int) *KNN { return numaml.NewKNN(queries, k) }

// --- online clustering service layer (internal/serve) ------------------

type (
	// Registry holds named, versioned model snapshots (copy-on-write).
	Registry = serve.Registry
	// ServeModel is one immutable published centroid snapshot.
	ServeModel = serve.Model
	// StreamEngine folds observations into a model forever (the
	// serving layer's updater), with exact checkpoint/resume.
	StreamEngine = serve.StreamEngine
	// StreamCheckpoint is a StreamEngine's explicit resumable state.
	StreamCheckpoint = serve.StreamCheckpoint
	// Batcher coalesces concurrent assignment requests into blocked
	// GEMM distance computations.
	Batcher = serve.Batcher
	// BatcherOptions tune the assignment path.
	BatcherOptions = serve.BatcherOptions
	// Assignment is the answer for one query row.
	Assignment = serve.Assignment
)

// NewRegistry builds a model registry pinning shards across the given
// number of simulated NUMA nodes.
func NewRegistry(nodes int) *Registry { return serve.NewRegistry(nodes) }

// NewStreamEngine starts a streaming updater for the named model from
// seed centroids, publishing them as version 1 when reg is non-nil.
func NewStreamEngine(name string, seeds *Matrix, reg *Registry) (*StreamEngine, error) {
	return serve.NewStreamEngine(name, seeds, reg)
}

// ResumeStreamEngine rebuilds a streaming updater from a checkpoint;
// fed the same remaining batches it lands bit-identically with an
// uninterrupted engine.
func ResumeStreamEngine(cp StreamCheckpoint, reg *Registry) (*StreamEngine, error) {
	return serve.ResumeStreamEngine(cp, reg)
}

// NewBatcher starts the batched assignment path over a registry.
func NewBatcher(reg *Registry, opts BatcherOptions) *Batcher {
	return serve.NewBatcher(reg, opts)
}

// Assigner is the precision-independent view of a batcher.
type Assigner = serve.Assigner

// NewAssigner starts the batched assignment path at the requested
// precision (Precision32 routes flushes through the float32 kernels
// against precomputed float32 centroid mirrors).
func NewAssigner(reg *Registry, opts BatcherOptions, p Precision) Assigner {
	return serve.NewAssigner(reg, opts, p)
}

// --- distributed serving (internal/shardserve) --------------------------

type (
	// ShardRegistry keeps one serve.Registry per simulated machine in
	// lockstep: publishing splits a model's centroid rows into
	// contiguous shards, one per machine, at the same version number.
	ShardRegistry = shardserve.ShardRegistry
	// ShardOptions configures a replicated shard registry: machine
	// count, replicas per shard group, and an optional membership
	// layer that triggers self-healing re-placement.
	ShardOptions = shardserve.Options
	// ShardSimConfig drives a simulated sharded-serving epoch.
	ShardSimConfig = shardserve.SimConfig
	// ShardSimStats summarises a simulated sharded-serving epoch.
	ShardSimStats = shardserve.SimStats
	// ChaosConfig drives a seeded kill-schedule run against a
	// replicated shard registry (see RunChaos).
	ChaosConfig = shardserve.ChaosConfig
	// ChaosStats summarises a chaos run: kills, failovers, errors,
	// wrong answers (always zero on a passing run), and recovery.
	ChaosStats = shardserve.ChaosStats
	// ClusterTopology is the cluster membership layer: health pulses,
	// sweep detection, and dead/recovered transitions dispatched over
	// channels to subscribers such as the shard registry. (Topology is
	// the simulated NUMA machine description.)
	ClusterTopology = topology.Topology
	// ClusterTopologyConfig sizes a ClusterTopology (machine count,
	// pulse timeout).
	ClusterTopologyConfig = topology.Config
)

// ErrShardUnavailable reports that every replica of a shard group was
// down; the error message names the dead centroid range [lo,hi).
// Other groups keep answering.
var ErrShardUnavailable = shardserve.ErrShardUnavailable

// NewClusterTopology builds a membership layer over machine IDs
// 0..machines-1, all initially live.
func NewClusterTopology(cfg ClusterTopologyConfig) *ClusterTopology {
	return topology.New(cfg)
}

// NewShardRegistry builds an empty centroid-sharded registry over the
// given machine count.
func NewShardRegistry(machines int) *ShardRegistry {
	return shardserve.NewShardRegistry(machines)
}

// NewShardedAssigner shards every model of reg (current and future
// publishes) across `machines` simulated machines and returns the
// fan-out assignment path at the requested precision: each machine
// answers queries against only its centroid shard, and per-shard
// argmins merge with lowest-global-index tie-breaking — bit-identical
// to the single-node NewAssigner for any machine count.
func NewShardedAssigner(reg *Registry, machines int, opts BatcherOptions, p Precision) (Assigner, error) {
	sr := shardserve.NewShardRegistry(machines)
	if err := sr.Attach(reg); err != nil {
		return nil, err
	}
	return shardserve.NewAssigner(sr, opts, p), nil
}

// NewReplicatedShardRegistry builds a shard registry whose shard
// groups are each placed on sopts.Replicas distinct machines; the
// fan-out assigner fails over across a group's replicas, so up to
// Replicas-1 machine deaths stay invisible to clients (answers remain
// bit-identical — every replica holds the same centroid rows at the
// same version). Wire a Topology into sopts to make the registry
// self-healing: on every dead/recovered transition it re-spreads shard
// replicas over the live machines from its retained canonical copies.
func NewReplicatedShardRegistry(sopts ShardOptions) *ShardRegistry {
	return shardserve.NewShardRegistryWith(sopts)
}

// RunChaos drives a seeded kill schedule against a replicated shard
// registry under QueryStream traffic, checking every answer against a
// single-node oracle bit for bit. Identical configs (same Seed)
// produce identical schedules and stats — the replay knob behind
// `make chaos-smoke`.
func RunChaos(cfg ChaosConfig) (ChaosStats, error) { return shardserve.RunChaos(cfg) }

// SimulateShardServe runs the sharded /assign fan-out pipeline in
// simulated time (router serialisation, binomial bcast, per-shard
// GEMM, recursive-doubling min-allreduce) and reports throughput and
// per-batch latency quantiles.
func SimulateShardServe(cfg ShardSimConfig) (ShardSimStats, error) {
	return shardserve.SimulateShardServe(cfg)
}

// --- clustering quality metrics ----------------------------------------

// Silhouette computes the centroid-based simplified silhouette.
func Silhouette(data, centroids *Matrix, assign []int32) float64 {
	return metrics.SimplifiedSilhouette(data, centroids, assign)
}

// DaviesBouldin computes the Davies-Bouldin index (lower is better).
func DaviesBouldin(data, centroids *Matrix, assign []int32) float64 {
	return metrics.DaviesBouldin(data, centroids, assign)
}

// AdjustedRand computes the adjusted Rand index between two labelings.
func AdjustedRand(a, b []int32) (float64, error) { return metrics.AdjustedRand(a, b) }

// NMI computes normalised mutual information between two labelings.
func NMI(a, b []int32) (float64, error) { return metrics.NMI(a, b) }

// Generate materialises a synthetic dataset.
func Generate(s Spec) *Matrix { return workload.Generate(s) }

// GenerateLabeled materialises a dataset with its generating labels
// (nil for the uniform kinds), for external-index evaluation.
func GenerateLabeled(s Spec) (*Matrix, []int32) { return workload.GenerateLabeled(s) }

// QueryStream draws endless query traffic matching a dataset spec (the
// serving layer's load generator).
type QueryStream = workload.QueryStream

// NewQueryStream builds a deterministic query stream for the spec.
func NewQueryStream(s Spec, seed int64) *QueryStream { return workload.NewQueryStream(s, seed) }

// LoadMatrix reads a matrix from the binary on-disk format.
func LoadMatrix(path string) (*Matrix, error) { return matrix.LoadFile(path) }

// SaveMatrix writes a matrix in the binary on-disk format.
func SaveMatrix(m *Matrix, path string) error { return m.SaveFile(path) }

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.NewDense(rows, cols) }

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) { return matrix.FromRows(rows) }

// DefaultTopology mirrors the paper's evaluation machine (4×12 cores).
func DefaultTopology() Topology { return numa.DefaultTopology() }

// DefaultCostModel returns the simulation calibration constants.
func DefaultCostModel() CostModel { return simclock.DefaultCostModel() }

// SSE computes the k-means objective of centroids against data.
func SSE(data, centroids *Matrix) float64 { return workload.SSE(data, centroids) }
